package fuzz

import (
	"testing"
	"time"

	"repro/internal/blame"
	"repro/internal/metrics"
	"repro/internal/vfsapi"
)

// cleanOutcome builds a synthetic outcome every checker accepts: the
// mutation tests below each corrupt one aspect of it and assert that
// exactly the targeted checker — and no other — fires. A checker that
// stays silent on its own corruption is a dead oracle.
func cleanOutcome() *Outcome {
	mk := func() *Result {
		req := blame.Request{
			Span: 1, Tenant: "victim", Op: "fsync", Dur: 3 * time.Millisecond,
			Buckets: []blame.Bucket{
				{Name: blame.BucketOSD, Dur: 2 * time.Millisecond},
				{Name: blame.BucketOther, Dur: time.Millisecond},
			},
		}
		return &Result{
			WriteOps: 100, ReadOps: 100,
			WriteMean: time.Millisecond, ReadMean: time.Millisecond,
			AckedBytes: 1 << 20, StoredBytes: 1 << 20,
			Admission: []TenantAdmission{{
				Tenant: "victim", QueueCap: 8,
				Stats: vfsapi.AdmissionStats{Offered: 120, Admitted: 110, Shed: 10, MaxQueued: 8},
			}},
			Report:       blame.Report{Requests: 1, PerRequest: []blame.Request{req}},
			ArtifactHash: "feedfacefeedfacefeedface",
			Summary:      "w=100 r=100",
		}
	}
	return &Outcome{
		Scenario: Scenario{
			Duration: 60 * time.Millisecond,
			Tenants:  []Tenant{{Workload: "randio", Threads: 1}},
		},
		Full:   mk(),
		Replay: mk(),
		Solo:   mk(),
	}
}

// only asserts that CheckAll on o reports the named checker and nothing
// else.
func only(t *testing.T, o *Outcome, checker string) {
	t.Helper()
	vs := CheckAll(o)
	if len(vs) == 0 {
		t.Fatalf("corrupted outcome passed every invariant, want %s to fire", checker)
	}
	for _, v := range vs {
		if v.Checker != checker {
			t.Fatalf("unexpected violation %v (want only %s)", v, checker)
		}
	}
}

func TestCleanOutcomePassesAllCheckers(t *testing.T) {
	if vs := CheckAll(cleanOutcome()); len(vs) != 0 {
		t.Fatalf("clean outcome violates: %v", vs)
	}
}

func TestCheckerFiresOnDataLoss(t *testing.T) {
	o := cleanOutcome()
	o.Full.AckedBytes = o.Full.StoredBytes + 4096
	only(t, o, "zero-data-loss")
}

func TestCheckerFiresOnBlameSumMismatch(t *testing.T) {
	o := cleanOutcome()
	o.Replay.Report.PerRequest[0].Dur += time.Microsecond
	only(t, o, "blame-sum")
}

func TestCheckerFiresOnNegativeBucket(t *testing.T) {
	o := cleanOutcome()
	// Keep the sum exact but drive the residual negative — the exact
	// shape of the netsim over-reporting bug.
	reqs := o.Solo.Report.PerRequest
	reqs[0].Buckets[0].Dur += 2 * time.Millisecond
	reqs[0].Buckets[1].Dur -= 2 * time.Millisecond
	only(t, o, "blame-sum")
}

func TestCheckerFiresOnBlameSumOverflowCap(t *testing.T) {
	o := cleanOutcome()
	bad := o.Full.Report.PerRequest[0]
	bad.Dur += time.Microsecond
	for i := 0; i < 6; i++ {
		o.Full.Report.PerRequest = append(o.Full.Report.PerRequest, bad)
	}
	vs := CheckAll(o)
	// 3 detailed breaches plus one "... and N more" line.
	if len(vs) != 4 {
		t.Fatalf("got %d violations, want 3 detailed + 1 overflow: %v", len(vs), vs)
	}
}

func TestCheckerFiresOnSpanLeak(t *testing.T) {
	o := cleanOutcome()
	o.Full.Leaked = []string{"victim/fsync span 9"}
	only(t, o, "span-leak")
}

func TestCheckerFiresOnReplayHashDivergence(t *testing.T) {
	o := cleanOutcome()
	o.Replay.ArtifactHash = "deadbeefdeadbeefdeadbeef"
	only(t, o, "replay-determinism")
}

func TestCheckerFiresOnReplaySummaryDivergence(t *testing.T) {
	o := cleanOutcome()
	o.Replay.Summary = "w=99 r=100"
	only(t, o, "replay-determinism")
}

func TestCheckerFiresOnIsolationBreach(t *testing.T) {
	o := cleanOutcome()
	o.Full.WriteMean = IsolationBound(o.Scenario, o.Solo.WriteMean) + time.Millisecond
	only(t, o, "isolation-bound")
}

func TestIsolationSkippedBelowFloor(t *testing.T) {
	o := cleanOutcome()
	o.Full.WriteMean = time.Hour
	o.Full.WriteOps = isolationFloorOps - 1
	if vs := CheckAll(o); len(vs) != 0 {
		t.Fatalf("under-sampled run should skip the isolation bound: %v", vs)
	}
}

func TestCheckerFiresOnFaultsWithoutSchedule(t *testing.T) {
	o := cleanOutcome()
	o.Full.Faults = metrics.FaultCounters{Retries: 3}
	o.Full.RegistryFaults = o.Full.Faults
	only(t, o, "fault-accounting")
}

func TestCheckerFiresOnRegistryMismatch(t *testing.T) {
	o := cleanOutcome()
	o.Scenario.Schedule = "osd-crash:@wal:10ms-20ms"
	o.Full.Faults = metrics.FaultCounters{Retries: 3}
	// The harvest double-count bug: registry sees every counter twice.
	o.Full.RegistryFaults = metrics.FaultCounters{Retries: 6}
	only(t, o, "fault-accounting")
}

func TestCheckerFiresOnQueueOverrun(t *testing.T) {
	o := cleanOutcome()
	o.Full.Admission[0].Stats.MaxQueued = o.Full.Admission[0].QueueCap + 1
	only(t, o, "bounded-queue")
}

func TestCheckerFiresOnAdmissionImbalance(t *testing.T) {
	o := cleanOutcome()
	// One shed operation went missing from the ledger.
	o.Replay.Admission[0].Stats.Shed--
	only(t, o, "admission-accounting")
}

func TestCheckerFiresOnResidualInFlight(t *testing.T) {
	o := cleanOutcome()
	// A drained engine with an operation still holding a slot means a
	// Release was lost; the identity breaks too, so both details are
	// admission-accounting.
	o.Solo.Admission[0].Stats.InFlight = 1
	only(t, o, "admission-accounting")
}

// crashedOutcome decorates the clean outcome with a scheduled crash and
// the matching evidence: one recorded, recovered event with a non-empty
// blast radius, and a remounted WAL covering every acked byte.
func crashedOutcome() *Outcome {
	o := cleanOutcome()
	o.Scenario.Crash = "danaus-crash:victim:10ms-20ms"
	for _, r := range []*Result{o.Full, o.Replay, o.Solo} {
		r.CrashEvents = 1
		r.CrashRecovered = 1
		r.CrashAffected = 1
		r.RemountSize = r.AckedBytes
	}
	return o
}

func TestCleanCrashOutcomePassesAllCheckers(t *testing.T) {
	if vs := CheckAll(crashedOutcome()); len(vs) != 0 {
		t.Fatalf("clean crash outcome violates: %v", vs)
	}
}

func TestCheckerFiresOnMissingCrashEvent(t *testing.T) {
	o := crashedOutcome()
	o.Full.CrashEvents = 0
	only(t, o, "crash-consistency")
}

func TestCheckerFiresOnUnrecoveredCrash(t *testing.T) {
	o := crashedOutcome()
	o.Replay.CrashRecovered = 0
	only(t, o, "crash-consistency")
}

func TestCheckerFiresOnEmptyBlastRadius(t *testing.T) {
	o := crashedOutcome()
	o.Solo.CrashAffected = 0
	only(t, o, "crash-consistency")
}

func TestCheckerFiresOnAckedBytesLostAcrossCrash(t *testing.T) {
	o := crashedOutcome()
	// The durability-contract bug: the remounted WAL is shorter than
	// what fsync acknowledged before the crash.
	o.Full.RemountSize = o.Full.AckedBytes - 4096
	only(t, o, "crash-consistency")
}

// tracedOutcome decorates the clean outcome with the trace-replay
// dimension and consistent evidence: a non-empty capture with matching
// hashes across the rerun, and two identical clean replays preserving
// the recorded sequence.
func tracedOutcome() *Outcome {
	o := cleanOutcome()
	o.Scenario.TraceReplay = true
	for _, r := range []*Result{o.Full, o.Replay, o.Solo} {
		r.TraceOps = 42
		r.TraceHash = "cafecafecafecafecafecafe"
	}
	rep := TraceReplayRun{Hash: "beefbeefbeefbeefbeefbeef", Ops: 42, SequenceOK: true}
	o.TraceRuns = []TraceReplayRun{rep, rep}
	return o
}

func TestCleanTracedOutcomePassesAllCheckers(t *testing.T) {
	if vs := CheckAll(tracedOutcome()); len(vs) != 0 {
		t.Fatalf("clean traced outcome violates: %v", vs)
	}
}

func TestCheckerFiresOnEmptyTraceCapture(t *testing.T) {
	o := tracedOutcome()
	o.Full.TraceOps = 0
	only(t, o, "trace-replay-determinism")
}

func TestCheckerFiresOnCaptureHashDivergence(t *testing.T) {
	o := tracedOutcome()
	o.Replay.TraceHash = "facefacefacefacefaceface"
	only(t, o, "trace-replay-determinism")
}

func TestCheckerFiresOnReplayScheduleDivergence(t *testing.T) {
	o := tracedOutcome()
	o.TraceRuns[1].Hash = "deadbeefdeadbeefdeadbeef"
	only(t, o, "trace-replay-determinism")
}

func TestCheckerFiresOnSkippedReplayOps(t *testing.T) {
	o := tracedOutcome()
	o.TraceRuns[0].Skipped = 3
	only(t, o, "trace-replay-determinism")
}

func TestCheckerFiresOnSequenceRewrite(t *testing.T) {
	o := tracedOutcome()
	o.TraceRuns[1].SequenceOK = false
	only(t, o, "trace-replay-determinism")
}

// telemetryOutcome decorates the clean outcome with the telemetry
// dimension and consistent evidence: monitor totals equal to the
// registry counters, closed windows, and matching artifact hashes
// across the replay.
func telemetryOutcome() *Outcome {
	o := cleanOutcome()
	o.Scenario.Telemetry = true
	counts := []TelOpCount{
		{Tenant: "victim", Op: "fsync", Ops: 100, Bytes: 1 << 20, Mean: time.Millisecond},
		{Tenant: "victim", Op: "read", Ops: 100, Bytes: 4 << 20, Mean: 2 * time.Millisecond},
	}
	for _, r := range []*Result{o.Full, o.Replay, o.Solo} {
		r.TelTotals = append([]TelOpCount{}, counts...)
		r.TelRegistry = append([]TelOpCount{}, counts...)
		r.TelWindows = 8
		r.TelAlerts = 2
		r.TelHash = "c0ffeec0ffeec0ffeec0ffee"
	}
	return o
}

func TestCleanTelemetryOutcomePassesAllCheckers(t *testing.T) {
	if vs := CheckAll(telemetryOutcome()); len(vs) != 0 {
		t.Fatalf("clean telemetry outcome violates: %v", vs)
	}
}

func TestCheckerFiresOnTelemetryNoOps(t *testing.T) {
	o := telemetryOutcome()
	o.Full.TelTotals = nil
	only(t, o, "telemetry-consistency")
}

func TestCheckerFiresOnTelemetryNoWindows(t *testing.T) {
	o := telemetryOutcome()
	o.Replay.TelWindows = 0
	only(t, o, "telemetry-consistency")
}

func TestCheckerFiresOnTelemetryCountDrift(t *testing.T) {
	o := telemetryOutcome()
	// The lost-window bug: one windowed op never folded into the totals.
	o.Full.TelTotals[1].Ops--
	only(t, o, "telemetry-consistency")
}

func TestCheckerFiresOnTelemetryRegistryOnlyOp(t *testing.T) {
	o := telemetryOutcome()
	// A facade op the telemetry sink never received.
	o.Solo.TelRegistry = append(o.Solo.TelRegistry, TelOpCount{Tenant: "victim", Op: "stat", Ops: 3})
	only(t, o, "telemetry-consistency")
}

func TestCheckerFiresOnTelemetryMonitorOnlyOp(t *testing.T) {
	o := telemetryOutcome()
	// The double-ingestion bug: the monitor counted an op stream the
	// registry has no record of.
	o.Full.TelTotals = append(o.Full.TelTotals, TelOpCount{Tenant: "zz", Op: "read", Ops: 9})
	only(t, o, "telemetry-consistency")
}

func TestCheckerFiresOnTelemetryHashDivergence(t *testing.T) {
	o := telemetryOutcome()
	o.Replay.TelHash = "deadbeefdeadbeefdeadbeef"
	only(t, o, "telemetry-consistency")
}

func TestTelemetryMismatchOverflowCap(t *testing.T) {
	o := telemetryOutcome()
	// Drift every counter on both runs' first entries plus extras so the
	// per-run cap (3 details + 1 overflow line) engages.
	for i := 0; i < 6; i++ {
		o.Full.TelRegistry = append(o.Full.TelRegistry, TelOpCount{Tenant: "z", Op: string(rune('a' + i)), Ops: 1})
	}
	vs := CheckAll(o)
	if len(vs) != 4 {
		t.Fatalf("got %d violations, want 3 detailed + 1 overflow: %v", len(vs), vs)
	}
	for _, v := range vs {
		if v.Checker != "telemetry-consistency" {
			t.Fatalf("unexpected violation %v", v)
		}
	}
}

// Every checker in the registry must be exercised by a mutation above;
// this guards against registering a new invariant without a dead-oracle
// test.
func TestEveryCheckerHasAMutation(t *testing.T) {
	covered := map[string]bool{
		"zero-data-loss":           true,
		"blame-sum":                true,
		"span-leak":                true,
		"replay-determinism":       true,
		"isolation-bound":          true,
		"fault-accounting":         true,
		"bounded-queue":            true,
		"admission-accounting":     true,
		"crash-consistency":        true,
		"trace-replay-determinism": true,
		"telemetry-consistency":    true,
	}
	for _, c := range Checkers() {
		if !covered[c.Name] {
			t.Errorf("checker %q has no mutation test", c.Name)
		}
	}
	if len(Checkers()) != len(covered) {
		t.Errorf("registry has %d checkers, mutations cover %d", len(Checkers()), len(covered))
	}
}

package fuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/blame"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/kern"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

// Result is everything the invariant checkers need from one finished
// testbed run of a scenario.
type Result struct {
	// Victim probe measurements (WAL fsync writer, cold backend reader).
	WriteOps  uint64
	ReadOps   uint64
	Errors    uint64
	WriteMean time.Duration
	ReadMean  time.Duration

	// AckedBytes is the fsync-acknowledged WAL size; StoredBytes is
	// what the cluster can reconstruct after the schedule completed.
	AckedBytes  int64
	StoredBytes int64

	// Open-loop aggressor accounting (zero unless the scenario has an
	// OfferedLoad).
	OLOffered   uint64
	OLCompleted uint64
	OLShed      uint64
	OLFailed    uint64
	// Admission snapshots every pool's admission counters at drain, in
	// pool creation order (empty unless the scenario has an AdmitQueue).
	Admission []TenantAdmission

	// Crash dimension evidence (zero values unless the scenario
	// schedules a client crash): events observed, events whose recovery
	// completed, pools interrupted summed over events, and the /wal size
	// visible through a fresh post-recovery handle (the remounted fsync
	// frontier the crash-consistency checker compares with AckedBytes).
	CrashEvents    int
	CrashRecovered int
	CrashAffected  int
	RemountSize    int64

	// Faults sums the victim pool's client fault counters, counting
	// each shared client or kernel mount exactly once.
	Faults metrics.FaultCounters
	// RegistryFaults is the victim tenant's fault aggregate as
	// harvested into the observability registry (must match Faults).
	RegistryFaults metrics.FaultCounters

	// Trace is the run's captured VFS op stream (nil unless the scenario
	// has the TraceReplay dimension); TraceOps and TraceHash summarize
	// it for the determinism digest.
	Trace     *trace.Trace
	TraceOps  int
	TraceHash string

	// Telemetry dimension evidence (empty unless the scenario attaches
	// the live monitor): the monitor's per-(tenant, op) running sums
	// folded from its closed windows, the registry's facade-op counters
	// they must equal, closed-window and alert-ledger sizes, and a
	// SHA-256 over the windows/alerts/totals CSV exports (the artifact-
	// determinism fingerprint of the telemetry layer).
	TelTotals   []TelOpCount
	TelRegistry []TelOpCount
	TelWindows  int
	TelAlerts   int
	TelHash     string

	// Leaked lists spans opened but never ended at engine drain.
	Leaked []string
	// Unattributed counts waits observed with no bound span.
	Unattributed uint64
	// Report is the blame analysis of the run.
	Report blame.Report
	// ArtifactHash is a SHA-256 over the run's exported trace, metrics
	// and blame artifacts — the replay-determinism fingerprint.
	ArtifactHash string
	// Summary is a deterministic one-line digest for sweep output.
	Summary string
}

// TenantAdmission is one pool's admission snapshot for the bounded-
// queue and admission-accounting checkers.
type TenantAdmission struct {
	Tenant   string
	QueueCap int
	Stats    vfsapi.AdmissionStats
}

// TelOpCount is one (tenant, op) aggregate in the telemetry-consistency
// comparison: the same shape is filled from the monitor's windowed
// totals and from the obs metrics registry, and the two must match
// exactly. Mean stands in for the latency sum (the registry histogram
// exposes only the mean, which is the exact sum over the exact count on
// both sides).
type TelOpCount struct {
	Tenant string
	Op     string
	Ops    uint64
	Errors uint64
	Bytes  int64
	Mean   time.Duration
}

// Evaluate runs a scenario through the full pipeline the checkers
// consume: the run itself, an identical replay (determinism), and —
// when co-tenants exist — a solo run with the tenants removed (the
// isolation baseline).
func Evaluate(sc Scenario) *Outcome {
	o := &Outcome{Scenario: sc}
	o.Full = RunScenario(sc, false)
	o.Replay = RunScenario(sc, false)
	if len(sc.Tenants) > 0 {
		o.Solo = RunScenario(sc, true)
	}
	if sc.TraceReplay && o.Full.Trace != nil {
		o.TraceRuns = []TraceReplayRun{
			replayTrace(sc, o.Full.Trace),
			replayTrace(sc, o.Full.Trace),
		}
	}
	return o
}

// scale converts the scenario sizing into the experiments form.
func (sc Scenario) scale() experiments.Scale {
	return experiments.Scale{Factor: sc.Factor, Duration: sc.Duration, Warmup: sc.Warmup}
}

// victimFaultStats sums fault counters over every distinct client and
// kernel Ceph store mounted in the pool. Shared clients and shared
// kernel mounts (scaleup clones) are counted once.
func victimFaultStats(pool *core.Pool) metrics.FaultCounters {
	var total metrics.FaultCounters
	seen := map[interface{}]bool{}
	for _, cont := range pool.Containers() {
		if c := cont.Mount.Client; c != nil && !seen[c] {
			seen[c] = true
			total.Add(c.FaultStats())
		}
		if m := cont.Mount.KernelMount; m != nil && !seen[m] {
			seen[m] = true
			if cs, ok := m.Store().(*kern.CephStore); ok {
				total.Add(cs.FaultStats())
			}
		}
	}
	return total
}

// RunScenario executes one scenario on a fresh testbed and collects
// the checker inputs. With solo set, the co-tenant workloads (and
// their pools) are omitted while the host stays identically sized —
// the isolation baseline the victim is compared against.
func RunScenario(sc Scenario, solo bool) *Result {
	scale := sc.scale()
	cores := 2 * (1 + len(sc.Tenants))
	var pol *core.OverloadPolicy
	if sc.AdmitQueue > 0 {
		pol = &core.OverloadPolicy{QueueCap: sc.AdmitQueue, RetrySeed: uint64(sc.Seed)}
	}
	tb := core.NewTestbed(core.TestbedConfig{Cores: cores, Params: scale.Params(), Overload: pol})
	rec := obs.New(obs.Config{Clock: tb.Eng.Now})
	tb.AttachObserver(rec)
	tb.Cluster.SetReplication(sc.Replication)

	var mon *telemetry.Monitor
	if sc.Telemetry {
		// Fast windows at 1/8 of the measurement window give every run a
		// handful of closed windows to fold; the error-rate SLO gives the
		// alert ledger coverage whenever a fault schedule pushes errors.
		// SampleInterval stays zero so the monitor adds no engine events
		// and the schedule is event-for-event the unmonitored one.
		mon = telemetry.New(telemetry.Config{
			FastWindow: sc.Duration / 8,
			SlowWindow: sc.Duration / 2,
			SLOs: []telemetry.SLO{
				{Name: "err-burn", Budget: 0.02, FireBurn: 2, ClearBurn: 1, MinOps: 1},
			},
		})
		tb.AttachMonitor(mon)
	}

	var capRec *trace.Recorder
	if sc.TraceReplay {
		capRec = trace.NewRecorder(sc.Config.String(), 0)
		capRec.Attach(rec)
	}

	res := &Result{}
	poolMem := scale.PoolMem()
	var cacheBytes int64
	if sc.CacheFrac > 0 {
		cacheBytes = poolMem / int64(sc.CacheFrac)
	}

	if err := tb.Cluster.ProvisionDir("/containers/victim"); err != nil {
		panic(err)
	}
	victimPool := tb.NewPool("victim", cpu.MaskRange(0, 2), poolMem)
	victim, err := victimPool.NewContainer("victim", core.MountSpec{
		Config: sc.Config, UpperDir: "/containers/victim", CacheBytes: cacheBytes,
	})
	if err != nil {
		panic(err)
	}
	if sc.SharedMount {
		// A scaleup clone: same image, same client/kernel mount. It
		// runs no workload of its own; its presence exercises the
		// shared-mount accounting paths.
		if _, err := victimPool.NewContainer("victim-clone", core.MountSpec{
			Config: sc.Config, UpperDir: "/containers/victim", CacheBytes: cacheBytes,
			SharedClient: victim.Mount.Client, SharedKernelMount: victim.Mount.KernelMount,
		}); err != nil {
			panic(err)
		}
	}

	type tenantInst struct {
		spec Tenant
		cont *core.Container
		fs   vfsapi.FileSystem
	}
	var tenants []tenantInst
	if !solo {
		for i, t := range sc.Tenants {
			dir := fmt.Sprintf("/containers/t%d", i)
			if err := tb.Cluster.ProvisionDir(dir); err != nil {
				panic(err)
			}
			pool := tb.NewPool(fmt.Sprintf("t%d", i), cpu.MaskRange(2+2*i, 4+2*i), poolMem)
			cont, err := pool.NewContainer(fmt.Sprintf("t%d", i), core.MountSpec{
				Config: sc.Config, UpperDir: dir, CacheBytes: cacheBytes,
			})
			if err != nil {
				panic(err)
			}
			inst := tenantInst{spec: t, cont: cont, fs: cont.Mount.Default}
			if t.Workload == "randio" {
				// The paper's noisy neighbour runs on the local ext4
				// array through the shared kernel.
				inst.fs = kern.NewSyscalls(tb.Kernel, tb.LocalFS)
			}
			tenants = append(tenants, inst)
		}
	}

	// The cold file overflows every cache tier so victim reads keep
	// hitting the backend through any fault window.
	coldSize := poolMem + poolMem/2
	const walOp = 64 << 10
	const readChunk = 256 << 10

	tb.Eng.Go("master", func(p *sim.Proc) {
		defer tb.Stop()

		g := workloads.NewGroup(tb.Eng)
		g.Go("prep-victim", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
			h, err := victim.Mount.Default.Open(ctx, "/wal", vfsapi.CREATE|vfsapi.WRONLY)
			if err != nil {
				panic(err)
			}
			if err := h.Close(ctx); err != nil {
				panic(err)
			}
			cold, err := victim.Mount.Default.Open(ctx, "/cold", vfsapi.CREATE|vfsapi.WRONLY)
			if err != nil {
				panic(err)
			}
			for written := int64(0); written < coldSize; written += 1 << 20 {
				if _, err := cold.Append(ctx, 1<<20); err != nil {
					panic(err)
				}
			}
			if err := cold.Fsync(ctx); err != nil {
				panic(err)
			}
			if err := cold.Close(ctx); err != nil {
				panic(err)
			}
		})

		type runner interface {
			Run(g *workloads.Group, clock workloads.Clock)
		}
		runners := make([]runner, len(tenants))
		dbs := make([]*kvstore.DB, len(tenants))
		for i := range tenants {
			i := i
			in := tenants[i]
			seed := workloads.StreamSeed(sc.Seed, in.spec.Workload, i)
			g.Go(fmt.Sprintf("prep-t%d", i), func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: in.cont.NewThread()}
				switch in.spec.Workload {
				case "fileserver":
					w := &workloads.Fileserver{
						FS: in.fs, Dir: "/flsdata", NewThread: in.cont.NewThread,
						Seed: seed, Threads: in.spec.Threads,
						Files: 12, MeanFileSize: 256 << 10,
					}
					w.Defaults(scale.Factor)
					if err := w.Prepare(ctx); err != nil {
						panic(err)
					}
					runners[i] = w
				case "webserver":
					w := &workloads.Webserver{
						FS: in.fs, Dir: "/webdata", NewThread: in.cont.NewThread,
						Seed: seed, Threads: in.spec.Threads, Files: 100,
					}
					w.Defaults(scale.Factor)
					if err := w.Prepare(ctx); err != nil {
						panic(err)
					}
					runners[i] = w
				case "kvput":
					db, err := kvstore.Open(ctx, kvstore.Config{
						FS: in.fs, Dir: "/kv", MemtableBytes: 4 << 20,
						Eng: tb.Eng, Params: tb.Params, NewThread: in.cont.NewThread,
					})
					if err != nil {
						panic(err)
					}
					dbs[i] = db
					runners[i] = &workloads.KVPut{
						DB: db, TotalBytes: 4 << 20, ValueSize: 64 << 10,
						Threads: in.spec.Threads, Seed: seed, NewThread: in.cont.NewThread,
						Stats: workloads.NewStats(),
					}
				case "randio":
					w := &workloads.RandomIO{
						FS: in.fs, Path: fmt.Sprintf("/rnd%d", i), NewThread: in.cont.NewThread,
						Seed: seed, Threads: in.spec.Threads, FileSize: 8 << 20,
					}
					w.Defaults(scale.Factor)
					if err := w.Prepare(ctx); err != nil {
						panic(err)
					}
					runners[i] = w
				default:
					panic("fuzz: unknown tenant workload " + in.spec.Workload)
				}
			})
		}
		g.Wait(p)

		now := tb.Eng.Now()
		clock := workloads.Clock{Eng: tb.Eng, From: now + sc.Warmup, Stop: now + sc.Warmup + sc.Duration}

		walNode, err := tb.Cluster.Tree().Lookup("/containers/victim/wal")
		if err != nil {
			panic(err)
		}
		walIno := walNode.Ino
		sched := sc.Schedule
		if sc.Crash != "" {
			if sched != "" {
				sched += ";"
			}
			sched += sc.Crash
		}
		sched = strings.ReplaceAll(sched, "@wal",
			strconv.Itoa(tb.Cluster.PlacementOf(walIno, 0)))
		plan, err := faults.Parse(sched)
		if err != nil {
			panic(err)
		}
		if _, err := faults.InstallWithTargets(tb.Eng, tb.Cluster, tb, plan, clock.From); err != nil {
			panic(err)
		}

		writer := workloads.NewStats()
		reader := workloads.NewStats()
		var acked, walSize int64

		run := workloads.NewGroup(tb.Eng)
		run.Go("wal-writer", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
			h, err := victim.Mount.Default.Open(ctx, "/wal", vfsapi.WRONLY)
			if err != nil {
				panic(err)
			}
			defer func() { h.Close(ctx) }()
			for !clock.Done() {
				start := pp.Now()
				_, werr := h.Append(ctx, walOp)
				if werr == nil {
					walSize += walOp
					werr = h.Fsync(ctx)
				}
				if werr != nil {
					if clock.Measuring() {
						writer.Errors++
					}
					pp.Sleep(time.Millisecond)
					// A crashed client invalidates its handles forever
					// (replayable remount); recovery means reopening. The
					// reopened size discounts appends the crash discarded,
					// so the acked frontier never counts lost bytes.
					if sc.Crash != "" {
						if nh, oerr := victim.Mount.Default.Open(ctx, "/wal", vfsapi.WRONLY); oerr == nil {
							h.Close(ctx)
							h = nh
							walSize = nh.Size()
						}
					}
					continue
				}
				// A successful fsync drained every dirty WAL extent, so
				// everything appended so far is acknowledged durable.
				acked = walSize
				if clock.Measuring() {
					writer.Record(walOp, pp.Now()-start)
				}
			}
		})
		run.Go("cold-reader", func(pp *sim.Proc) {
			ctx := vfsapi.Ctx{P: pp, T: victim.NewThread()}
			h, err := victim.Mount.Default.Open(ctx, "/cold", vfsapi.RDONLY)
			if err != nil {
				panic(err)
			}
			defer func() { h.Close(ctx) }()
			var off int64
			for !clock.Done() {
				start := pp.Now()
				n, rerr := h.Read(ctx, off, readChunk)
				if rerr != nil {
					if clock.Measuring() {
						reader.Errors++
					}
					pp.Sleep(time.Millisecond)
					if sc.Crash != "" {
						if nh, oerr := victim.Mount.Default.Open(ctx, "/cold", vfsapi.RDONLY); oerr == nil {
							h.Close(ctx)
							h = nh
						}
					}
				} else if clock.Measuring() {
					reader.Record(n, pp.Now()-start)
				}
				off += readChunk
				if off >= coldSize {
					off = 0
				}
			}
		})
		var ol *workloads.OpenLoop
		if sc.OfferedLoad > 0 {
			ol = &workloads.OpenLoop{
				FS: victim.Mount.Default, Path: "/cold", FileSize: coldSize,
				OpSize: readChunk, Rate: float64(sc.OfferedLoad),
				Seed:      workloads.StreamSeed(sc.Seed, "openloop", 0),
				NewThread: victim.NewThread, Stats: workloads.NewStats(),
			}
			ol.Run(run, clock)
		}
		for i, w := range runners {
			if w == nil {
				panic(fmt.Sprintf("fuzz: tenant %d has no runner", i))
			}
			w.Run(run, clock)
		}
		run.Wait(p)

		// A kvstore keeps a background compaction loop alive until closed;
		// an open DB would re-arm its timer forever and the engine would
		// never drain.
		for i, db := range dbs {
			if db != nil {
				db.Close(vfsapi.Ctx{P: p, T: tenants[i].cont.NewThread()})
			}
		}

		// Collect durability evidence only after every fault window has
		// disarmed: a crashed OSD still down at collection time would
		// read as (transient) data loss.
		var lastEnd time.Duration
		for _, w := range plan.Windows {
			if w.End > lastEnd {
				lastEnd = w.End
			}
		}
		if settle := clock.From + lastEnd + time.Millisecond; tb.Eng.Now() < settle {
			p.Sleep(settle - tb.Eng.Now())
		}

		// Post-recovery remount evidence: a fresh handle on the WAL after
		// every crash window has restarted shows the durable frontier an
		// application would see on reopen.
		if sc.Crash != "" {
			ctx := vfsapi.Ctx{P: p, T: victim.NewThread()}
			if h, oerr := victim.Mount.Default.Open(ctx, "/wal", vfsapi.RDONLY); oerr == nil {
				res.RemountSize = h.Size()
				h.Close(ctx)
			}
		}

		res.WriteOps = writer.Ops.Ops
		res.ReadOps = reader.Ops.Ops
		res.Errors = writer.Errors + reader.Errors
		res.WriteMean = writer.Latency.Mean()
		res.ReadMean = reader.Latency.Mean()
		res.AckedBytes = acked
		res.StoredBytes = tb.Cluster.StoredSize(walIno)
		res.Faults = victimFaultStats(victimPool)
		if ol != nil {
			res.OLOffered = ol.Offered
			res.OLCompleted = ol.Completed
			res.OLShed = ol.Shed
			res.OLFailed = ol.Failed
		}
	})
	tb.Eng.Run()

	for _, ev := range tb.CrashLog() {
		res.CrashEvents++
		if ev.Recovered {
			res.CrashRecovered++
		}
		res.CrashAffected += len(ev.Affected)
	}

	// Admission counters are final once the engine drains; pool order is
	// creation order, so the snapshot list is deterministic.
	for _, pl := range tb.Pools() {
		if a := pl.Admission; a != nil {
			res.Admission = append(res.Admission, TenantAdmission{
				Tenant: pl.Name, QueueCap: a.QueueCap(), Stats: a.Stats(),
			})
		}
	}

	if capRec != nil {
		res.Trace = capRec.Snapshot()
		res.TraceOps = len(res.Trace.Ops)
		res.TraceHash = res.Trace.ScheduleHash()
	}

	rec.Finalize()
	if mon != nil {
		res.TelTotals = monitorOpCounts(mon)
		res.TelRegistry = registryOpCounts(rec.Registry())
		res.TelWindows = len(mon.Windows())
		res.TelAlerts = len(mon.Alerts())
		res.TelHash = hashTelemetry(mon)
	}
	res.RegistryFaults = rec.Registry().Tenant("victim").Faults()
	res.Leaked = rec.LeakedSpans()
	res.Unattributed = rec.UnattributedWaits()
	res.Report = blame.Analyze("fuzz", rec)
	res.ArtifactHash = hashArtifacts(rec, res.Report)
	res.Summary = res.summaryLine()
	return res
}

// TraceReplayRun is one clean-testbed replay of a scenario's captured
// op trace, summarized for the trace-replay-determinism checker.
type TraceReplayRun struct {
	Hash       string // schedule hash of the replayed trace
	Ops        int
	Errors     int
	Skipped    int
	SequenceOK bool // replay preserved the recorded per-stream op sequence
}

// replayTrace reissues a captured op trace against a freshly built
// testbed shaped like the scenario's (same configuration, pools, cache
// sizing and admission policy) but with no workloads and no fault
// schedule. The capture includes preparation ops, so the replay is
// self-contained: recorded creates rebuild the fileset the later ops
// touch.
func replayTrace(sc Scenario, tr *trace.Trace) TraceReplayRun {
	scale := sc.scale()
	cores := 2 * (1 + len(sc.Tenants))
	var pol *core.OverloadPolicy
	if sc.AdmitQueue > 0 {
		pol = &core.OverloadPolicy{QueueCap: sc.AdmitQueue, RetrySeed: uint64(sc.Seed)}
	}
	tb := core.NewTestbed(core.TestbedConfig{Cores: cores, Params: scale.Params(), Overload: pol})
	tb.Cluster.SetReplication(sc.Replication)

	poolMem := scale.PoolMem()
	var cacheBytes int64
	if sc.CacheFrac > 0 {
		cacheBytes = poolMem / int64(sc.CacheFrac)
	}

	bindings := map[string]trace.Binding{}
	if err := tb.Cluster.ProvisionDir("/containers/victim"); err != nil {
		panic(err)
	}
	victimPool := tb.NewPool("victim", cpu.MaskRange(0, 2), poolMem)
	victim, err := victimPool.NewContainer("victim", core.MountSpec{
		Config: sc.Config, UpperDir: "/containers/victim", CacheBytes: cacheBytes,
	})
	if err != nil {
		panic(err)
	}
	bindings["victim"] = trace.Binding{FS: victim.Mount.Default, NewThread: victim.NewThread}
	for i := range sc.Tenants {
		dir := fmt.Sprintf("/containers/t%d", i)
		if err := tb.Cluster.ProvisionDir(dir); err != nil {
			panic(err)
		}
		pool := tb.NewPool(fmt.Sprintf("t%d", i), cpu.MaskRange(2+2*i, 4+2*i), poolMem)
		cont, err := pool.NewContainer(fmt.Sprintf("t%d", i), core.MountSpec{
			Config: sc.Config, UpperDir: dir, CacheBytes: cacheBytes,
		})
		if err != nil {
			panic(err)
		}
		bindings[fmt.Sprintf("t%d", i)] = trace.Binding{FS: cont.Mount.Default, NewThread: cont.NewThread}
	}

	var replayed *trace.Trace
	var stats *trace.ReplayStats
	tb.Eng.Go("trace-replay-master", func(p *sim.Proc) {
		defer tb.Stop()
		replayed, stats = trace.Replay(p, tb.Eng, tr, "replay", func(tenant string) (trace.Binding, bool) {
			b, ok := bindings[tenant]
			return b, ok
		})
	})
	tb.Eng.Run()

	return TraceReplayRun{
		Hash:       replayed.ScheduleHash(),
		Ops:        stats.Ops,
		Errors:     stats.Errors,
		Skipped:    stats.Skipped,
		SequenceOK: replayed.OpSequence() == tr.OpSequence(),
	}
}

// monitorOpCounts flattens the monitor's running totals into the
// comparison shape. Mean is the exact LatSum over the exact op count,
// matching the registry histogram's Mean on the other side.
func monitorOpCounts(mon *telemetry.Monitor) []TelOpCount {
	var out []TelOpCount
	for _, t := range mon.Totals() {
		c := TelOpCount{Tenant: t.Tenant, Op: t.Op, Ops: t.Ops, Errors: t.Errors, Bytes: t.Bytes}
		if t.Ops > 0 {
			c.Mean = t.LatSum / time.Duration(t.Ops)
		}
		out = append(out, c)
	}
	return out
}

// registryOpCounts flattens the obs registry's per-(tenant, op)
// counters into the comparison shape, sorted by tenant then op. The
// "writeback" op is excluded: background writeback spans end in the
// registry but never cross the facade, so the monitor legitimately
// never sees them.
func registryOpCounts(reg *obs.Registry) []TelOpCount {
	var out []TelOpCount
	tenants := make([]string, 0, len(reg.Tenants()))
	for name := range reg.Tenants() {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		tm := reg.Tenants()[name]
		ops := make([]string, 0, len(tm.Ops()))
		for op := range tm.Ops() {
			if op == "writeback" {
				continue
			}
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			st := tm.Ops()[op]
			out = append(out, TelOpCount{
				Tenant: name, Op: op,
				Ops: st.Ops, Errors: st.Errors, Bytes: st.Bytes,
				Mean: st.Hist.Mean(),
			})
		}
	}
	return out
}

// hashTelemetry fingerprints the monitor's exported artifacts — the
// windows CSV, the alert ledger and the running totals — which must be
// byte-identical across replays of one scenario.
func hashTelemetry(mon *telemetry.Monitor) string {
	h := sha256.New()
	if err := mon.WriteWindowsCSV(h); err != nil {
		panic(err)
	}
	if err := mon.WriteAlertsCSV(h); err != nil {
		panic(err)
	}
	if err := mon.WriteTotalsCSV(h); err != nil {
		panic(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashArtifacts fingerprints the run's exported artifacts: the
// Perfetto trace, the metrics JSON and the blame JSON, all of which
// must be byte-identical across replays of one scenario.
func hashArtifacts(rec *obs.Recorder, rep blame.Report) string {
	h := sha256.New()
	runs := []obs.Run{{Label: "fuzz", Rec: rec}}
	if err := obs.WriteTrace(h, runs); err != nil {
		panic(err)
	}
	if err := obs.WriteMetrics(h, runs); err != nil {
		panic(err)
	}
	if err := blame.WriteJSON(h, []blame.Report{rep}); err != nil {
		panic(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// summaryLine renders the deterministic per-run digest. Overload
// fields are appended only when the dimension is active, keeping
// historical scenario digests unchanged.
func (r *Result) summaryLine() string {
	s := fmt.Sprintf("w=%d/%v r=%d/%v err=%d acked=%d stored=%d retries=%d failovers=%d misses=%d reqs=%d leaks=%d hash=%s",
		r.WriteOps, r.WriteMean, r.ReadOps, r.ReadMean, r.Errors,
		r.AckedBytes, r.StoredBytes,
		r.Faults.Retries, r.Faults.Failovers, r.Faults.DeadlineMisses,
		r.Report.Requests, len(r.Leaked), r.ArtifactHash[:12])
	if r.OLOffered > 0 || len(r.Admission) > 0 {
		var off, adm, shed uint64
		maxq := 0
		for _, a := range r.Admission {
			off += a.Stats.Offered
			adm += a.Stats.Admitted
			shed += a.Stats.Shed
			if a.Stats.MaxQueued > maxq {
				maxq = a.Stats.MaxQueued
			}
		}
		s += fmt.Sprintf(" ol=%d/%d/%d/%d adm=%d/%d/%d maxq=%d",
			r.OLOffered, r.OLCompleted, r.OLShed, r.OLFailed, off, adm, shed, maxq)
	}
	if r.CrashEvents > 0 {
		s += fmt.Sprintf(" crash=%d/%d aff=%d remount=%d",
			r.CrashEvents, r.CrashRecovered, r.CrashAffected, r.RemountSize)
	}
	if r.TraceOps > 0 {
		s += fmt.Sprintf(" trace=%d/%s", r.TraceOps, r.TraceHash[:12])
	}
	if r.TelHash != "" {
		s += fmt.Sprintf(" tel=%d/%d/%s", r.TelWindows, r.TelAlerts, r.TelHash[:12])
	}
	return s
}

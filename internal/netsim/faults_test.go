package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// Zero-byte transfers model control messages: they must pay the link
// latency only, never be rounded up to a data byte, and count as one
// message.
func TestZeroByteTransferLatencyOnly(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 1<<20, time.Millisecond, 64<<10)
	var done time.Duration
	var err error
	e.Go("tx", func(p *sim.Proc) {
		err = l.Transfer(p, 0)
		done = p.Now()
	})
	e.Run()
	if err != nil {
		t.Fatalf("zero-byte transfer: %v", err)
	}
	if done != time.Millisecond {
		t.Fatalf("zero-byte transfer took %v, want the 1ms latency only", done)
	}
	if l.Bytes() != 0 {
		t.Fatalf("zero-byte transfer counted %d bytes, want 0", l.Bytes())
	}
	if l.Messages() != 1 {
		t.Fatalf("messages = %d, want 1", l.Messages())
	}
}

func TestNegativeTransferClampedToZero(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 1<<20, time.Millisecond, 64<<10)
	var done time.Duration
	e.Go("tx", func(p *sim.Proc) {
		if err := l.Transfer(p, -7); err != nil {
			t.Errorf("negative transfer: %v", err)
		}
		done = p.Now()
	})
	e.Run()
	if done != time.Millisecond || l.Bytes() != 0 {
		t.Fatalf("negative transfer: done=%v bytes=%d, want 1ms and 0", done, l.Bytes())
	}
}

func TestLinkExtraLatency(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 1<<20, time.Millisecond, 64<<10)
	l.SetExtraLatency(2 * time.Millisecond)
	var spiked, restored time.Duration
	e.Go("tx", func(p *sim.Proc) {
		l.Transfer(p, 0)
		spiked = p.Now()
		l.SetExtraLatency(0)
		start := p.Now()
		l.Transfer(p, 0)
		restored = p.Now() - start
	})
	e.Run()
	if spiked != 3*time.Millisecond {
		t.Fatalf("spiked transfer took %v, want 3ms", spiked)
	}
	if restored != time.Millisecond {
		t.Fatalf("restored transfer took %v, want 1ms", restored)
	}
}

func TestLinkPartition(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 1<<20, time.Millisecond, 64<<10)
	l.SetPartitioned(true)
	var errPart, errHealed error
	var partDone time.Duration
	e.Go("tx", func(p *sim.Proc) {
		errPart = l.Transfer(p, 4096)
		partDone = p.Now()
		l.SetPartitioned(false)
		errHealed = l.Transfer(p, 4096)
	})
	e.Run()
	if !errors.Is(errPart, ErrPartitioned) {
		t.Fatalf("partitioned transfer: err=%v, want ErrPartitioned", errPart)
	}
	if partDone != time.Millisecond {
		t.Fatalf("partitioned attempt took %v, want the latency (timeout) only", partDone)
	}
	if l.Bytes() != 4096 {
		t.Fatalf("bytes=%d: the partitioned attempt must not count traffic", l.Bytes())
	}
	if errHealed != nil {
		t.Fatalf("healed transfer: %v", errHealed)
	}
}

func TestLinkDropEvery(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 1<<20, 0, 64<<10)
	l.SetDropEvery(3)
	var errs []bool
	e.Go("tx", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			errs = append(errs, errors.Is(l.Transfer(p, 64), ErrDropped))
		}
		// Re-arming resets the counter so a later window drops at the
		// same deterministic offsets.
		l.SetDropEvery(3)
		for i := 0; i < 3; i++ {
			errs = append(errs, errors.Is(l.Transfer(p, 64), ErrDropped))
		}
	})
	e.Run()
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("drop pattern %v, want %v", errs, want)
		}
	}
}

// A latency spike arming while a transfer is mid-propagation must not
// inflate the reported wait: the wait observer must see exactly the
// time the sender was blocked, or blame decomposition over-explains
// the span and the "other" residual goes negative (found by the fuzz
// sweep's blame-sum invariant).
func TestSpikeArmedMidTransferReportsActualWait(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 1<<20, time.Millisecond, 64<<10)
	var reported, actual time.Duration
	e.SetWaitObserver(func(p *sim.Proc, kind, resource, holder string, holderID int, start, dur time.Duration) {
		if kind == "net" {
			reported += dur
		}
	})
	e.Go("tx", func(p *sim.Proc) {
		start := p.Now()
		l.Transfer(p, 0)
		actual = p.Now() - start
	})
	e.Go("spike", func(p *sim.Proc) {
		p.Sleep(500 * time.Microsecond)
		l.SetExtraLatency(5 * time.Millisecond)
	})
	e.Run()
	if actual != time.Millisecond {
		t.Fatalf("transfer blocked %v, want the pre-spike 1ms latency", actual)
	}
	if reported != actual {
		t.Fatalf("observer saw %v of net wait for %v of blocking", reported, actual)
	}
}

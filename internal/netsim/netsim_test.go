package netsim

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestLinkTransferTime(t *testing.T) {
	e := sim.NewEngine()
	// 1 MB/s link, 1ms latency: 1 MB takes 1s + 1ms.
	l := NewLink(e, "l", 1<<20, time.Millisecond, 64<<10)
	var done time.Duration
	e.Go("tx", func(p *sim.Proc) {
		l.Transfer(p, 1<<20)
		done = p.Now()
	})
	e.Run()
	want := time.Second + time.Millisecond
	if done != want {
		t.Fatalf("transfer done at %v, want %v", done, want)
	}
	if l.Bytes() != 1<<20 || l.Messages() != 1 {
		t.Fatalf("counters: bytes=%d msgs=%d", l.Bytes(), l.Messages())
	}
}

func TestLinkSerializesConcurrentFlows(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 1<<20, 0, 64<<10)
	var last time.Duration
	for i := 0; i < 4; i++ {
		e.Go("tx", func(p *sim.Proc) {
			l.Transfer(p, 256<<10)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	e.Run()
	// 4 × 256 KB over a 1 MB/s link = 1s aggregate.
	if last != time.Second {
		t.Fatalf("last flow done at %v, want 1s", last)
	}
}

func TestLinkMTUInterleavingBoundsSmallFlowDelay(t *testing.T) {
	e := sim.NewEngine()
	l := NewLink(e, "l", 1<<20, 0, 64<<10) // 64 KB chunks = 62.5ms each
	var smallDone time.Duration
	e.Go("big", func(p *sim.Proc) { l.Transfer(p, 1<<20) })
	e.Go("small", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		l.Transfer(p, 1<<10)
		smallDone = p.Now()
	})
	e.Run()
	// Without chunking, small waits a full second; with 64 KB chunks it
	// slips in after one chunk.
	if smallDone > 200*time.Millisecond {
		t.Fatalf("small flow convoyed behind big: done at %v", smallDone)
	}
}

func TestFabricRequestReply(t *testing.T) {
	e := sim.NewEngine()
	params := model.Default()
	f := NewFabric(e, params, 3)
	if len(f.Servers) != 3 {
		t.Fatalf("servers = %d", len(f.Servers))
	}
	var rtt time.Duration
	e.Go("client", func(p *sim.Proc) {
		start := p.Now()
		f.Request(p, 1, 4096)
		f.Reply(p, 1, 4096)
		rtt = p.Now() - start
	})
	e.Run()
	if rtt <= 0 {
		t.Fatal("no time elapsed for request/reply")
	}
	// RTT must be at least the sum of link latencies crossed.
	minLatency := params.NetLatency + params.NetLatency/2 // tx + rx per direction... client.tx + server.rx
	if rtt < minLatency {
		t.Fatalf("rtt %v below propagation floor %v", rtt, minLatency)
	}
	if f.Servers[1].RX.Bytes() != 4096 || f.Servers[0].RX.Bytes() != 0 {
		t.Fatal("request routed to wrong server")
	}
}

func TestDuplexDirectionsAreIndependent(t *testing.T) {
	// A saturated transmit direction must not delay receive traffic.
	e := sim.NewEngine()
	nic := NewNIC(e, "n", 1<<20, 0, 64<<10)
	var rxDone time.Duration
	e.Go("tx", func(p *sim.Proc) { nic.TX.Transfer(p, 4<<20) }) // 4s of TX
	e.Go("rx", func(p *sim.Proc) {
		nic.RX.Transfer(p, 256<<10)
		rxDone = p.Now()
	})
	e.Run()
	if rxDone > 300*time.Millisecond {
		t.Fatalf("RX convoyed behind TX: done at %v", rxDone)
	}
}

func TestFabricServersIndependent(t *testing.T) {
	// Traffic to one server must not serialize with another server's,
	// beyond the shared client NIC.
	e := sim.NewEngine()
	params := model.Default()
	f := NewFabric(e, params, 2)
	var done [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		e.Go("flow", func(p *sim.Proc) {
			f.Request(p, i, 8<<20)
			done[i] = p.Now()
		})
	}
	e.Run()
	// Shared client NIC serializes 16MB total; per-server links overlap,
	// so both finish within ~the client NIC time, not 2x a full chain.
	clientTime := model.RateTime(16<<20, params.ClientNICBytesPerSec)
	for i, d := range done {
		if d > clientTime+model.RateTime(8<<20, params.ServerNICBytesPerSec)+10*params.NetLatency {
			t.Fatalf("flow %d took %v; server links not parallel", i, d)
		}
	}
}

// Package netsim models the network between the client host and the
// storage servers: duplex links with bandwidth serialization, one-way
// latency, and MTU-chunked pipelining so concurrent flows share a link
// fairly.
package netsim

import (
	"errors"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// Fault-injection errors. Both are returned after the caller has paid
// the full time cost of the failed transfer, so retries compound
// realistically.
var (
	// ErrPartitioned reports that the link is partitioned: the message
	// never arrives and the sender times out.
	ErrPartitioned = errors.New("netsim: link partitioned")
	// ErrDropped reports that this particular message was lost.
	ErrDropped = errors.New("netsim: message dropped")
)

// Link is one direction of a network interface: transfers serialize on
// the link at its configured bandwidth and then experience propagation
// latency.
type Link struct {
	eng     *sim.Engine
	name    string
	bps     int64
	latency time.Duration
	mtu     int64
	xmit    *sim.Mutex

	bytes uint64
	msgs  uint64

	// Fault-injection state, armed and disarmed by scheduled windows
	// (see internal/faults). All deterministic: no randomness.
	extraLatency time.Duration
	dropEvery    uint64 // drop every Nth message while armed (0 = off)
	dropCount    uint64
	partitioned  bool
}

// NewLink creates a unidirectional link.
func NewLink(eng *sim.Engine, name string, bytesPerSec int64, latency time.Duration, mtu int64) *Link {
	if mtu <= 0 {
		mtu = 64 << 10
	}
	return &Link{
		eng:     eng,
		name:    name,
		bps:     bytesPerSec,
		latency: latency,
		mtu:     mtu,
		xmit:    sim.NewMutex(eng, name+".xmit"),
	}
}

// Transfer moves n bytes across the link, blocking the caller for
// queueing + transmission + propagation. Transfers are chunked at the
// MTU so concurrent flows interleave instead of convoying. A zero-byte
// transfer (a bare ack) pays propagation latency only. The returned
// error is non-nil only under armed fault windows: a partitioned link
// times out without delivering, and a drop window loses every Nth
// message after its full transmission cost.
func (l *Link) Transfer(p *sim.Proc, n int64) error {
	if l.partitioned {
		// The sender blocks for a timeout instead of a transmission; no
		// bytes are delivered. Capture the delay before sleeping: a
		// latency-spike window arming or disarming mid-sleep would make
		// a re-evaluated report disagree with the time actually blocked.
		d := l.latency + l.extraLatency
		p.Sleep(d)
		p.ReportWait("net", l.name, "", 0, d)
		return ErrPartitioned
	}
	if n < 0 {
		n = 0
	}
	l.msgs++
	l.bytes += uint64(n)
	for n > 0 {
		chunk := l.mtu
		if n < chunk {
			chunk = n
		}
		l.xmit.Lock(p)
		tx := model.RateTime(chunk, l.bps)
		p.Sleep(tx)
		l.xmit.Unlock(p)
		p.ReportWait("net", l.name, "", 0, tx)
		n -= chunk
	}
	// Same capture-before-sleep rule as above: the propagation delay
	// reported must be the delay actually slept, not one re-read after
	// a fault window toggled extraLatency.
	d := l.latency + l.extraLatency
	p.Sleep(d)
	p.ReportWait("net", l.name, "", 0, d)
	if l.dropEvery > 0 {
		l.dropCount++
		if l.dropCount%l.dropEvery == 0 {
			return ErrDropped
		}
	}
	return nil
}

// Bytes returns total bytes transferred.
func (l *Link) Bytes() uint64 { return l.bytes }

// Messages returns total messages transferred.
func (l *Link) Messages() uint64 { return l.msgs }

// SetExtraLatency arms (or with 0 disarms) a latency spike on the link.
func (l *Link) SetExtraLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.extraLatency = d
}

// SetDropEvery arms deterministic packet loss: every nth message on the
// link is dropped after paying its transmission cost. n = 0 disarms.
func (l *Link) SetDropEvery(n uint64) {
	l.dropEvery = n
	l.dropCount = 0
}

// SetPartitioned arms or disarms a full partition of the link.
func (l *Link) SetPartitioned(v bool) { l.partitioned = v }

// NIC is a duplex interface: independent transmit and receive links.
type NIC struct {
	TX *Link
	RX *Link
}

// NewNIC creates a duplex NIC with symmetric per-direction bandwidth.
func NewNIC(eng *sim.Engine, name string, bytesPerSec int64, latency time.Duration, mtu int64) *NIC {
	return &NIC{
		TX: NewLink(eng, name+".tx", bytesPerSec, latency, mtu),
		RX: NewLink(eng, name+".rx", bytesPerSec, latency/2, mtu),
	}
}

// SetExtraLatency arms a latency spike on both directions of the NIC.
func (n *NIC) SetExtraLatency(d time.Duration) {
	n.TX.SetExtraLatency(d)
	n.RX.SetExtraLatency(d)
}

// SetDropEvery arms deterministic loss on both directions of the NIC.
func (n *NIC) SetDropEvery(every uint64) {
	n.TX.SetDropEvery(every)
	n.RX.SetDropEvery(every)
}

// SetPartitioned partitions or heals both directions of the NIC.
func (n *NIC) SetPartitioned(v bool) {
	n.TX.SetPartitioned(v)
	n.RX.SetPartitioned(v)
}

// Fabric connects the client host to the server VMs. A request path
// crosses the client NIC and the target server's NIC; latency is paid
// once per link.
type Fabric struct {
	Client  *NIC
	Servers []*NIC
}

// NewFabric builds the testbed network: one client NIC (bonded 20 Gbps
// in the paper) and one NIC per server VM.
func NewFabric(eng *sim.Engine, params *model.Params, servers int) *Fabric {
	f := &Fabric{
		Client: NewNIC(eng, "client-nic", params.ClientNICBytesPerSec, params.NetLatency, params.NetMTU),
	}
	for i := 0; i < servers; i++ {
		f.Servers = append(f.Servers, NewNIC(eng, "server-nic", params.ServerNICBytesPerSec, params.NetLatency, params.NetMTU))
	}
	return f
}

// Request moves n bytes from the client to server s (request
// direction). The first failing hop wins: a message lost on the client
// NIC never reaches the server link.
func (f *Fabric) Request(p *sim.Proc, s int, n int64) error {
	if err := f.Client.TX.Transfer(p, n); err != nil {
		return err
	}
	return f.Servers[s].RX.Transfer(p, n)
}

// Reply moves n bytes from server s back to the client.
func (f *Fabric) Reply(p *sim.Proc, s int, n int64) error {
	if err := f.Servers[s].TX.Transfer(p, n); err != nil {
		return err
	}
	return f.Client.RX.Transfer(p, n)
}

// Package netsim models the network between the client host and the
// storage servers: duplex links with bandwidth serialization, one-way
// latency, and MTU-chunked pipelining so concurrent flows share a link
// fairly.
package netsim

import (
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

// Link is one direction of a network interface: transfers serialize on
// the link at its configured bandwidth and then experience propagation
// latency.
type Link struct {
	eng     *sim.Engine
	name    string
	bps     int64
	latency time.Duration
	mtu     int64
	xmit    *sim.Mutex

	bytes uint64
	msgs  uint64
}

// NewLink creates a unidirectional link.
func NewLink(eng *sim.Engine, name string, bytesPerSec int64, latency time.Duration, mtu int64) *Link {
	if mtu <= 0 {
		mtu = 64 << 10
	}
	return &Link{
		eng:     eng,
		name:    name,
		bps:     bytesPerSec,
		latency: latency,
		mtu:     mtu,
		xmit:    sim.NewMutex(eng, name+".xmit"),
	}
}

// Transfer moves n bytes across the link, blocking the caller for
// queueing + transmission + propagation. Transfers are chunked at the
// MTU so concurrent flows interleave instead of convoying.
func (l *Link) Transfer(p *sim.Proc, n int64) {
	if n <= 0 {
		n = 1
	}
	l.msgs++
	l.bytes += uint64(n)
	for n > 0 {
		chunk := l.mtu
		if n < chunk {
			chunk = n
		}
		l.xmit.Lock(p)
		p.Sleep(model.RateTime(chunk, l.bps))
		l.xmit.Unlock(p)
		n -= chunk
	}
	p.Sleep(l.latency)
}

// Bytes returns total bytes transferred.
func (l *Link) Bytes() uint64 { return l.bytes }

// Messages returns total messages transferred.
func (l *Link) Messages() uint64 { return l.msgs }

// NIC is a duplex interface: independent transmit and receive links.
type NIC struct {
	TX *Link
	RX *Link
}

// NewNIC creates a duplex NIC with symmetric per-direction bandwidth.
func NewNIC(eng *sim.Engine, name string, bytesPerSec int64, latency time.Duration, mtu int64) *NIC {
	return &NIC{
		TX: NewLink(eng, name+".tx", bytesPerSec, latency, mtu),
		RX: NewLink(eng, name+".rx", bytesPerSec, latency/2, mtu),
	}
}

// Fabric connects the client host to the server VMs. A request path
// crosses the client NIC and the target server's NIC; latency is paid
// once per link.
type Fabric struct {
	Client  *NIC
	Servers []*NIC
}

// NewFabric builds the testbed network: one client NIC (bonded 20 Gbps
// in the paper) and one NIC per server VM.
func NewFabric(eng *sim.Engine, params *model.Params, servers int) *Fabric {
	f := &Fabric{
		Client: NewNIC(eng, "client-nic", params.ClientNICBytesPerSec, params.NetLatency, params.NetMTU),
	}
	for i := 0; i < servers; i++ {
		f.Servers = append(f.Servers, NewNIC(eng, "server-nic", params.ServerNICBytesPerSec, params.NetLatency, params.NetMTU))
	}
	return f
}

// Request moves n bytes from the client to server s (request direction).
func (f *Fabric) Request(p *sim.Proc, s int, n int64) {
	f.Client.TX.Transfer(p, n)
	f.Servers[s].RX.Transfer(p, n)
}

// Reply moves n bytes from server s back to the client.
func (f *Fabric) Reply(p *sim.Proc, s int, n int64) {
	f.Servers[s].TX.Transfer(p, n)
	f.Client.RX.Transfer(p, n)
}

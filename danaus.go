// Package danaus is a simulation-based reproduction of "Experience
// Paper: Danaus: Isolation and Efficiency of Container I/O at the
// Client Side of Network Storage" (Kappes & Anastasiadis,
// Middleware '21).
//
// Danaus provisions a distinct user-level filesystem client per tenant
// on a multitenant host: each container pool gets its own filesystem
// service — a union filesystem libservice stacked over a Ceph client
// libservice with a configurable cache — reached over shared-memory
// queues, with a FUSE legacy path for kernel-initiated I/O. This
// package is the public facade over the full reproduction: the
// deterministic discrete-event testbed (host kernel, CPU, network,
// disks, Ceph-like cluster), the eight client configurations of the
// paper's Table 1, the workloads of Table 2, and runners for every
// evaluation figure.
//
// # Quickstart
//
//	tb := danaus.NewTestbed(danaus.TestbedConfig{Cores: 4})
//	tb.Cluster.ProvisionDir("/containers/c0")
//	pool := tb.NewPool("tenant-a", danaus.CoreMask(0, 1), 8<<30)
//	c, _ := pool.NewContainer("c0", danaus.MountSpec{
//		Config:   danaus.D,
//		UpperDir: "/containers/c0",
//	})
//	tb.Eng.Go("app", func(p *danaus.Proc) {
//		ctx := danaus.Ctx{P: p, T: c.NewThread()}
//		h, _ := c.Mount.Default.Open(ctx, "/hello.txt", danaus.Create|danaus.WriteOnly)
//		h.Write(ctx, 0, 4096)
//		h.Close(ctx)
//		tb.Stop()
//	})
//	tb.Eng.Run()
//
// See the examples directory for multitenant isolation, a key-value
// store over Danaus, and webserver startup scaleup.
package danaus

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/vfsapi"
)

// Core simulation types.
type (
	// Testbed is the full experimental environment (client host +
	// storage cluster), the Fig 5 setup.
	Testbed = core.Testbed
	// TestbedConfig sizes the testbed.
	TestbedConfig = core.TestbedConfig
	// Pool is a container pool: the reserved cores and memory of one
	// tenant.
	Pool = core.Pool
	// Container is one container with its root filesystem mount.
	Container = core.Container
	// MountSpec describes a container filesystem configuration.
	MountSpec = core.MountSpec
	// MountResult is an assembled filesystem stack.
	MountResult = core.MountResult
	// Configuration names a Table 1 client composition.
	Configuration = core.Configuration
	// Library is the Danaus filesystem library (front driver) with its
	// private file-descriptor table and mount table.
	Library = core.Library
	// Proc is a simulated process.
	Proc = sim.Proc
	// Engine is the discrete-event engine.
	Engine = sim.Engine
	// Ctx carries a simulated thread through filesystem calls.
	Ctx = vfsapi.Ctx
	// FileSystem is the POSIX-like filesystem interface.
	FileSystem = vfsapi.FileSystem
	// Handle is an open file.
	Handle = vfsapi.Handle
	// FileInfo describes a file.
	FileInfo = vfsapi.FileInfo
	// OpenFlag is a bitmask of open flags.
	OpenFlag = vfsapi.OpenFlag
	// Mask is a set of processor cores.
	Mask = cpu.Mask
)

// Table 1 configurations.
const (
	// D is Danaus: union + client libservices over shared-memory IPC.
	D = core.ConfigD
	// K is the kernel CephFS client.
	K = core.ConfigK
	// F is ceph-fuse with direct I/O.
	F = core.ConfigF
	// FP is ceph-fuse with the page cache stacked on top.
	FP = core.ConfigFP
	// KK is AUFS over kernel CephFS.
	KK = core.ConfigKK
	// FK is unionfs-fuse over kernel CephFS.
	FK = core.ConfigFK
	// FF is unionfs-fuse over ceph-fuse.
	FF = core.ConfigFF
	// FPFP is unionfs-fuse over ceph-fuse with the page cache used by
	// both layers.
	FPFP = core.ConfigFPFP
)

// Open flags.
const (
	// ReadOnly opens for reading.
	ReadOnly = vfsapi.RDONLY
	// WriteOnly opens for writing.
	WriteOnly = vfsapi.WRONLY
	// ReadWrite opens for reading and writing.
	ReadWrite = vfsapi.RDWR
	// Create creates the file if missing.
	Create = vfsapi.CREATE
	// Truncate empties the file on open.
	Truncate = vfsapi.TRUNC
	// Append positions writes at end of file.
	Append = vfsapi.APPEND
	// Direct bypasses the kernel page cache.
	Direct = vfsapi.DIRECT
)

// NewTestbed builds the simulated environment of the paper's Fig 5.
func NewTestbed(cfg TestbedConfig) *Testbed { return core.NewTestbed(cfg) }

// NewLibrary creates a Danaus filesystem library (front driver) with an
// optional kernel fallback.
func NewLibrary(fallback FileSystem) *Library { return core.NewLibrary(fallback) }

// CoreMask builds a processor core set.
func CoreMask(cores ...int) Mask { return cpu.MaskOf(cores...) }

// CoreRange builds a mask of cores [lo, hi).
func CoreRange(lo, hi int) Mask { return cpu.MaskRange(lo, hi) }

// AllConfigurations lists Table 1 in presentation order.
func AllConfigurations() []Configuration { return core.AllConfigurations() }

// Experiment scales.
type Scale = experiments.Scale

// Predefined experiment scales.
var (
	// QuickScale runs each experiment in well under a second.
	QuickScale = experiments.QuickScale
	// DefaultScale balances fidelity and wall time.
	DefaultScale = experiments.DefaultScale
	// PaperScale matches the published parameters (120 s windows).
	PaperScale = experiments.PaperScale
)

package danaus

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the documentation entry points whose relative links
// must resolve (the CI docs-lint step runs this test).
var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"OBSERVABILITY.md",
	"TRACES.md",
	"ROADMAP.md",
}

var mdLink = regexp.MustCompile(`\]\(([^)]+)\)`)

// TestDocLinksResolve verifies every relative markdown link in the
// documentation set points at a file or directory that exists.
func TestDocLinksResolve(t *testing.T) {
	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexAny(target, "#?"); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			rel := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(rel); err != nil {
				t.Errorf("%s: broken link %q (%v)", doc, m[1], err)
			}
		}
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at quick
// scale (use cmd/danausbench -scale paper for full-size runs) and
// reports the figure's primary metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` prints the same series the paper plots.
package danaus_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

func benchScale() experiments.Scale { return experiments.QuickScale }

// BenchmarkFig1Motivation regenerates Fig 1: Fileserver over the kernel
// client collapsing under a RandomIO neighbour (throughput bars, lock
// wait/hold lines).
func BenchmarkFig1Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		alone := experiments.RunInterference(experiments.InterferenceCase{Config: core.ConfigK, FLSCount: 1}, benchScale())
		contended := experiments.RunInterference(experiments.InterferenceCase{Config: core.ConfigK, FLSCount: 1, Neighbor: "RND"}, benchScale())
		b.ReportMetric(alone.FLSThroughputMBps, "alone-MB/s")
		b.ReportMetric(contended.FLSThroughputMBps, "rnd-MB/s")
		b.ReportMetric(alone.FLSThroughputMBps/contended.FLSThroughputMBps, "drop-x")
		b.ReportMetric(float64(contended.LockWaitPerReq)/float64(alone.LockWaitPerReq+1), "lockwait-growth-x")
	}
}

// BenchmarkFig6aRandomIO regenerates Fig 6a: the same interference over
// Danaus versus the kernel client.
func BenchmarkFig6aRandomIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := experiments.RunInterference(experiments.InterferenceCase{Config: core.ConfigK, FLSCount: 1, Neighbor: "RND"}, benchScale())
		d := experiments.RunInterference(experiments.InterferenceCase{Config: core.ConfigD, FLSCount: 1, Neighbor: "RND"}, benchScale())
		b.ReportMetric(k.FLSThroughputMBps, "K+RND-MB/s")
		b.ReportMetric(d.FLSThroughputMBps, "D+RND-MB/s")
		b.ReportMetric(d.NeighborCoreUtilPct, "D-nbr-util-pct")
	}
}

// BenchmarkFig6bWebserver regenerates Fig 6b: Fileserver next to a
// local Webserver.
func BenchmarkFig6bWebserver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := experiments.RunInterference(experiments.InterferenceCase{Config: core.ConfigK, FLSCount: 1, Neighbor: "WBS"}, benchScale())
		d := experiments.RunInterference(experiments.InterferenceCase{Config: core.ConfigD, FLSCount: 1, Neighbor: "WBS"}, benchScale())
		b.ReportMetric(k.FLSThroughputMBps, "K+WBS-MB/s")
		b.ReportMetric(d.FLSThroughputMBps, "D+WBS-MB/s")
	}
}

// BenchmarkFig6cSysbench regenerates Fig 6c: Sysbench p99 and
// Fileserver latency under colocation.
func BenchmarkFig6cSysbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := experiments.RunSysbench(experiments.SysbenchCase{Config: core.ConfigK, WithSSB: true}, benchScale())
		d := experiments.RunSysbench(experiments.SysbenchCase{Config: core.ConfigD, WithSSB: true}, benchScale())
		b.ReportMetric(float64(k.SSBLatencyP99.Microseconds()), "K-ssb-p99-us")
		b.ReportMetric(float64(d.SSBLatencyP99.Microseconds()), "D-ssb-p99-us")
	}
}

// BenchmarkFig7aKVPutScaleout regenerates Fig 7a: KV put latency with a
// private client per pool.
func BenchmarkFig7aKVPutScaleout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.RunKVScaleout(core.ConfigD, 8, experiments.PhasePut, benchScale())
		f := experiments.RunKVScaleout(core.ConfigF, 8, experiments.PhasePut, benchScale())
		k := experiments.RunKVScaleout(core.ConfigK, 8, experiments.PhasePut, benchScale())
		b.ReportMetric(float64(d.PutLatency.Microseconds()), "D-put-us")
		b.ReportMetric(float64(f.PutLatency.Microseconds()), "F-put-us")
		b.ReportMetric(float64(k.PutLatency.Microseconds()), "K-put-us")
	}
}

// BenchmarkFig7bKVGetScaleout regenerates Fig 7b: out-of-core KV get
// latency.
func BenchmarkFig7bKVGetScaleout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.RunKVScaleout(core.ConfigD, 4, experiments.PhaseGet, benchScale())
		k := experiments.RunKVScaleout(core.ConfigK, 4, experiments.PhaseGet, benchScale())
		b.ReportMetric(float64(d.GetLatency.Microseconds()), "D-get-us")
		b.ReportMetric(float64(k.GetLatency.Microseconds()), "K-get-us")
	}
}

// BenchmarkFig7cKVPutScaleup regenerates Fig 7c: KV put latency for
// cloned containers over a shared client.
func BenchmarkFig7cKVPutScaleup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.RunKVScaleup(core.ConfigD, 8, experiments.PhasePut, benchScale())
		ff := experiments.RunKVScaleup(core.ConfigFF, 8, experiments.PhasePut, benchScale())
		kk := experiments.RunKVScaleup(core.ConfigKK, 8, experiments.PhasePut, benchScale())
		b.ReportMetric(float64(d.PutLatency.Microseconds()), "D-put-us")
		b.ReportMetric(float64(ff.PutLatency.Microseconds()), "FF-put-us")
		b.ReportMetric(float64(kk.PutLatency.Microseconds()), "KK-put-us")
	}
}

// BenchmarkFig7dKVGetScaleup regenerates Fig 7d: KV get latency for
// cloned containers.
func BenchmarkFig7dKVGetScaleup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.RunKVScaleup(core.ConfigD, 4, experiments.PhaseGet, benchScale())
		ff := experiments.RunKVScaleup(core.ConfigFF, 4, experiments.PhaseGet, benchScale())
		b.ReportMetric(float64(d.GetLatency.Microseconds()), "D-get-us")
		b.ReportMetric(float64(ff.GetLatency.Microseconds()), "FF-get-us")
	}
}

// BenchmarkFig8ContainerStartup regenerates Fig 8: real time and
// context switches to start cloned webserver containers.
func BenchmarkFig8ContainerStartup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.RunStartupScaleup(core.ConfigD, 16, benchScale())
		kk := experiments.RunStartupScaleup(core.ConfigKK, 16, benchScale())
		ff := experiments.RunStartupScaleup(core.ConfigFF, 16, benchScale())
		b.ReportMetric(d.RealTime.Seconds()*1000, "D-start-ms")
		b.ReportMetric(kk.RealTime.Seconds()*1000, "KK-start-ms")
		b.ReportMetric(ff.RealTime.Seconds()*1000, "FF-start-ms")
		b.ReportMetric(float64(ff.ContextSwitches)/float64(d.ContextSwitches+1), "FF/D-ctxsw-x")
	}
}

// BenchmarkFig9Seqwrite regenerates Fig 9 (top): Seqwrite scaleout.
func BenchmarkFig9Seqwrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.RunSeqIOScaleout(core.ConfigD, 4, true, benchScale())
		f := experiments.RunSeqIOScaleout(core.ConfigF, 4, true, benchScale())
		k := experiments.RunSeqIOScaleout(core.ConfigK, 4, true, benchScale())
		b.ReportMetric(d.ThroughputMBps, "D-MB/s")
		b.ReportMetric(f.ThroughputMBps, "F-MB/s")
		b.ReportMetric(k.ThroughputMBps, "K-MB/s")
	}
}

// BenchmarkFig9Seqread regenerates Fig 9 (bottom): cached Seqread.
func BenchmarkFig9Seqread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.RunSeqIOScaleout(core.ConfigD, 1, false, benchScale())
		f := experiments.RunSeqIOScaleout(core.ConfigF, 1, false, benchScale())
		k := experiments.RunSeqIOScaleout(core.ConfigK, 1, false, benchScale())
		b.ReportMetric(d.ThroughputMBps, "D-MB/s")
		b.ReportMetric(f.ThroughputMBps, "F-MB/s")
		b.ReportMetric(k.ThroughputMBps, "K-MB/s")
	}
}

// BenchmarkFig10FileserverScaleout regenerates Fig 10: Fileserver
// throughput across pool counts.
func BenchmarkFig10FileserverScaleout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.RunFileserverScaleout(core.ConfigD, 8, benchScale())
		f := experiments.RunFileserverScaleout(core.ConfigF, 8, benchScale())
		k := experiments.RunFileserverScaleout(core.ConfigK, 8, benchScale())
		b.ReportMetric(d.ThroughputMBps, "D-MB/s")
		b.ReportMetric(f.ThroughputMBps, "F-MB/s")
		b.ReportMetric(k.ThroughputMBps, "K-MB/s")
	}
}

// BenchmarkFig11aFileappend regenerates Fig 11a: COW-heavy append
// scaleup (timespan + max memory).
func BenchmarkFig11aFileappend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.RunFileIOScaleup(core.ConfigD, 8, true, benchScale())
		kk := experiments.RunFileIOScaleup(core.ConfigKK, 8, true, benchScale())
		b.ReportMetric(d.Timespan.Seconds()*1000, "D-ms")
		b.ReportMetric(kk.Timespan.Seconds()*1000, "KK-ms")
		b.ReportMetric(float64(d.MaxMemory>>20), "D-maxmem-MB")
	}
}

// BenchmarkFig11bFileread regenerates Fig 11b: shared-file read scaleup
// (timespan + the FP/FP double-caching memory blowup).
func BenchmarkFig11bFileread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.RunFileIOScaleup(core.ConfigD, 8, false, benchScale())
		kk := experiments.RunFileIOScaleup(core.ConfigKK, 8, false, benchScale())
		fpfp := experiments.RunFileIOScaleup(core.ConfigFPFP, 8, false, benchScale())
		b.ReportMetric(d.Timespan.Seconds()*1000, "D-ms")
		b.ReportMetric(kk.Timespan.Seconds()*1000, "KK-ms")
		b.ReportMetric(float64(fpfp.MaxMemory)/float64(d.MaxMemory+1), "FPFP/D-mem-x")
	}
}

// BenchmarkTable1Configurations exercises every Table 1 composition
// with a small mixed workload, reporting nothing but validating that
// all eight stacks assemble and serve I/O.
func BenchmarkTable1Configurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cfg := range core.AllConfigurations() {
			row := experiments.RunStartupScaleup(cfg, 1, benchScale())
			if row.RealTime <= 0 {
				b.Fatalf("configuration %v produced no startup time", cfg)
			}
		}
	}
}

// BenchmarkAblationClientLock reproduces the paper's §6.3.2 preliminary
// experiment: cached-read throughput with and without the coarse
// client_lock.
func BenchmarkAblationClientLock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := experiments.RunAblationClientLock(benchScale())
		b.ReportMetric(row.Baseline, "locked-MB/s")
		b.ReportMetric(row.Ablated, "fine-grained-MB/s")
	}
}

// BenchmarkAblationWakeupElision quantifies the IPC polling window.
func BenchmarkAblationWakeupElision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := experiments.RunAblationWakeupElision(benchScale())
		b.ReportMetric(row.Ablated/row.Baseline, "switch-blowup-x")
	}
}

// BenchmarkAblationUnionIntegration quantifies libservice integration
// versus a FUSE crossing between union and client.
func BenchmarkAblationUnionIntegration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row := experiments.RunAblationUnionIntegration(benchScale())
		b.ReportMetric(row.Baseline, "integrated-ms")
		b.ReportMetric(row.Ablated, "fuse-crossed-ms")
	}
}

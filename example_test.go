package danaus_test

import (
	"fmt"

	danaus "repro"
)

// Example builds the simulated testbed, reserves a pool for one tenant,
// mounts a Danaus filesystem for a container and performs a write —
// entirely in deterministic virtual time.
func Example() {
	tb := danaus.NewTestbed(danaus.TestbedConfig{Cores: 4})
	tb.Cluster.ProvisionDir("/containers/c0")

	pool := tb.NewPool("tenant-a", danaus.CoreMask(0, 1), 8<<30)
	c, err := pool.NewContainer("c0", danaus.MountSpec{
		Config:   danaus.D,
		UpperDir: "/containers/c0",
	})
	if err != nil {
		panic(err)
	}

	tb.Eng.Go("app", func(p *danaus.Proc) {
		ctx := danaus.Ctx{P: p, T: c.NewThread()}
		h, err := c.Mount.Default.Open(ctx, "/hello.txt", danaus.Create|danaus.WriteOnly)
		if err != nil {
			panic(err)
		}
		h.Write(ctx, 0, 4096)
		h.Close(ctx)

		info, _ := c.Mount.Default.Stat(ctx, "/hello.txt")
		fmt.Printf("hello.txt holds %d bytes\n", info.Size)
		tb.Stop()
	})
	tb.Eng.Run()

	// Output:
	// hello.txt holds 4096 bytes
}

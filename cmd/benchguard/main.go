// Command benchguard compares `go test -bench` output against a
// checked-in ns/op baseline and fails on large regressions. It guards
// the simulator hot path (engine park/wake, mutex handoff, CPU
// scheduler) in CI without flaking on runner speed differences: the
// threshold is a generous multiple, so only order-of-magnitude
// slowdowns — an accidentally quadratic event queue, a lost fast
// path — trip it.
//
// Usage:
//
//	go test -bench . ./internal/sim/ | benchguard -baseline ci/bench-baseline.txt
//	benchguard -baseline ci/bench-baseline.txt bench-output.txt
//	benchguard -baseline ci/bench-baseline.txt -update bench-output.txt
//
// The baseline file holds one "name ns_per_op" pair per line (names
// normalized without the -GOMAXPROCS suffix); -update rewrites it from
// the current input instead of comparing.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result, e.g.
// "BenchmarkEngineYield-8   2318934   515.3 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts normalized benchmark names and ns/op from
// `go test -bench` output. Duplicate names (the same benchmark run for
// several packages or -count values) keep the slowest result, so the
// guard judges the worst case.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		if ns > out[m[1]] {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

// parseBaseline reads the checked-in "name ns_per_op" pairs.
func parseBaseline(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("baseline: malformed line %q", line)
		}
		ns, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || ns <= 0 {
			return nil, fmt.Errorf("baseline: bad ns/op in %q", line)
		}
		out[fields[0]] = ns
	}
	return out, sc.Err()
}

// compare reports regressions of current vs baseline beyond threshold.
// Benchmarks missing on either side are surfaced as warnings, not
// failures, so adding or retiring a benchmark doesn't break CI before
// the baseline is refreshed.
func compare(w io.Writer, baseline, current map[string]float64, threshold float64) (regressions int) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Fprintf(w, "warn: %s in baseline but not in input\n", name)
			continue
		}
		ratio := cur / base
		status := "ok"
		if ratio > threshold {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-40s %12.1f -> %12.1f ns/op  (%.2fx, limit %.1fx) %s\n",
			name, base, cur, ratio, threshold, status)
	}
	extra := make([]string, 0)
	for name := range current {
		if _, ok := baseline[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "warn: %s not in baseline (run with -update to add)\n", name)
	}
	return regressions
}

// writeBaseline emits the baseline file content for -update.
func writeBaseline(w io.Writer, current map[string]float64) error {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %.1f\n", name, current[name]); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "", "checked-in baseline file (name ns_per_op per line)")
	threshold := flag.Float64("threshold", 5.0, "fail when current ns/op exceeds baseline by this factor")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
	flag.Parse()

	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark results in input")
		os.Exit(2)
	}

	if *update {
		f, err := os.Create(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		if err := writeBaseline(f, current); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchguard: baseline %s updated with %d benchmark(s)\n", *baselinePath, len(current))
		return
	}

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	baseline, err := parseBaseline(bf)
	bf.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if n := compare(os.Stdout, baseline, current, *threshold); n > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d benchmark regression(s) beyond %.1fx\n", n, *threshold)
		os.Exit(1)
	}
	fmt.Println("benchguard: all benchmarks within threshold")
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/internal/sim
BenchmarkEngineSleepWake-8   	 2215130	       532.1 ns/op
BenchmarkEngineYield-8       	 4000000	       301.0 ns/op
BenchmarkMutexContendedHandoff-8 	 1212121	       900 ns/op
PASS
ok  	repro/internal/sim	4.913s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkEngineSleepWake":       532.1,
		"BenchmarkEngineYield":           301.0,
		"BenchmarkMutexContendedHandoff": 900,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
	// Duplicates keep the slowest run.
	dup, err := parseBench(strings.NewReader(
		"BenchmarkEngineYield-8 100 200 ns/op\nBenchmarkEngineYield-16 100 150 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if dup["BenchmarkEngineYield"] != 200 {
		t.Errorf("duplicate handling wrong: %v", dup)
	}
}

func TestParseBaseline(t *testing.T) {
	in := "# comment\n\nBenchmarkEngineYield 300.0\nBenchmarkMutexContendedHandoff 900\n"
	got, err := parseBaseline(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkEngineYield"] != 300 || got["BenchmarkMutexContendedHandoff"] != 900 {
		t.Errorf("baseline parsed wrong: %v", got)
	}
	if _, err := parseBaseline(strings.NewReader("only-one-field\n")); err == nil {
		t.Error("malformed baseline accepted")
	}
}

func TestCompare(t *testing.T) {
	baseline := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkGone": 50}
	current := map[string]float64{"BenchmarkA": 450, "BenchmarkB": 600, "BenchmarkNew": 10}
	var buf bytes.Buffer
	n := compare(&buf, baseline, current, 5.0)
	if n != 1 {
		t.Fatalf("want exactly 1 regression (B at 6x), got %d:\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "BenchmarkB") || !strings.Contains(out, "REGRESSION") {
		t.Errorf("regression not reported:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkGone in baseline but not in input") {
		t.Errorf("missing-benchmark warning absent:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkNew not in baseline") {
		t.Errorf("new-benchmark warning absent:\n%s", out)
	}
}

func TestWriteBaselineRoundTrip(t *testing.T) {
	current := map[string]float64{"BenchmarkB": 123.4, "BenchmarkA": 500}
	var buf bytes.Buffer
	if err := writeBaseline(&buf, current); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "BenchmarkA 500.0\nBenchmarkB 123.4\n" {
		t.Errorf("baseline output wrong:\n%s", buf.String())
	}
	back, err := parseBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back["BenchmarkA"] != 500 || back["BenchmarkB"] != 123.4 {
		t.Errorf("round trip wrong: %v", back)
	}
}

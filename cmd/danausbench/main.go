// Command danausbench regenerates the paper's evaluation figures on the
// simulated testbed.
//
// Usage:
//
//	danausbench -list
//	danausbench -exp fig6a [-scale quick|default|paper]
//	danausbench -exp all -scale default
//	danausbench -exp faultsweep -trace trace.json -metrics metrics.json
//	danausbench -exp blamesweep -blame blame.json -whatif lockcs=0.5,flusher=pinned
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record. With -trace and/or
// -metrics, every testbed built by the selected experiments records
// cross-layer spans and per-tenant metrics (see OBSERVABILITY.md);
// the trace loads in the Perfetto UI and -metrics accepts a .csv
// suffix for the time-series alone.
//
// -blame writes the latency blame analysis (critical-path buckets per
// tenant plus the interference matrix) of every recorded run to the
// given .json or .csv file. -whatif re-runs each blamesweep case under
// a modified cost model ("nic=2x,osd=2x,lockcs=0.5,flusher=pinned")
// and reports predicted-vs-measured per-tenant mean latency; with
// -blame the comparison also lands in <base>-whatif.json.
//
// Op-trace record/replay (see TRACES.md):
//
//	danausbench -exp tracesweep -record base.trace -diffcsv diff.csv
//	danausbench -replay base.trace -config K -diffcsv k.csv
//	danausbench -tracediff base.trace,k.trace
//
// -record captures the VFS op stream: with -exp tracesweep it writes
// the production-shaped baseline recording; with any other experiment
// it writes one trace per observed run. -replay reissues a recorded
// trace against the chosen client configuration and diffs the result
// against the recording; -tracediff compares two trace files offline.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/blame"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fuzz"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workloads"
)

var experimentsByName = map[string]func(experiments.Scale){
	"fig1":          runFig1,
	"fig6a":         runFig6a,
	"fig6b":         runFig6b,
	"fig6c":         runFig6c,
	"fig7a":         func(s experiments.Scale) { runKVScaleout(experiments.PhasePut, s) },
	"fig7b":         func(s experiments.Scale) { runKVScaleout(experiments.PhaseGet, s) },
	"fig7c":         func(s experiments.Scale) { runKVScaleup(experiments.PhasePut, s) },
	"fig7d":         func(s experiments.Scale) { runKVScaleup(experiments.PhaseGet, s) },
	"fig8":          runFig8,
	"fig9w":         func(s experiments.Scale) { runSeqIO(true, s) },
	"fig9r":         func(s experiments.Scale) { runSeqIO(false, s) },
	"fig10":         runFig10,
	"fig11a":        func(s experiments.Scale) { runFileIO(true, s) },
	"fig11b":        func(s experiments.Scale) { runFileIO(false, s) },
	"table1":        runTable1,
	"table2":        runTable2,
	"ablations":     runAblations,
	"faultsweep":    runFaultSweep,
	"blamesweep":    runBlameSweep,
	"fuzzsweep":     runFuzzSweep,
	"overloadsweep": runOverloadSweep,
	"crashsweep":    runCrashSweep,
	"tracesweep":    runTraceSweep,
	"monitorsweep":  runMonitorSweep,
}

// invariantFailures counts invariant violations observed by experiment
// runs (overloadsweep admission accounting, faultsweep data loss).
// Outside -fuzz mode they turn the exit status nonzero so CI catches a
// run whose rows printed fine but broke a correctness property.
var invariantFailures int

// noteViolations reports invariant violations and accumulates them
// into the process exit status.
func noteViolations(vs []string) {
	for _, v := range vs {
		fmt.Fprintln(os.Stderr, "INVARIANT VIOLATION: "+v)
	}
	invariantFailures += len(vs)
}

// obsRuns collects one recorder per testbed built while -trace or
// -metrics is set, in construction order, for export at exit.
var obsRuns []obs.Run

// blameReports and whatIfReports accumulate the blame analyses of
// blamesweep runs (which manage their own recorders) for export via
// -blame; whatIf is the parsed -whatif spec, nil when unset.
var (
	blameReports  []blame.Report
	whatIfReports []blame.WhatIfReport
	whatIf        *blame.WhatIf
)

// recordTracePath (-record) receives the recorded op trace: the
// tracesweep baseline when -exp tracesweep, otherwise one trace per
// observed run. diffCSVPath (-diffcsv) receives trace-diff rows.
// sweepArtifacts routes the two into runTraceSweep when the sweep was
// selected directly (under -exp all the generic capture path owns
// them instead). opCaptures holds the generic per-run capture
// recorders, parallel to obsRuns.
var (
	recordTracePath string
	diffCSVPath     string
	sweepArtifacts  bool
	captureOps      bool
	opCaptures      []*trace.Recorder
)

// enableObservability points experiments.Observer at a recorder
// factory: each testbed gets its own recorder (runs stay separable in
// the exported artifacts) sampling utilization every 10 ms of virtual
// time. With -record, each recorder additionally feeds a per-run op
// capture.
func enableObservability() {
	experiments.Observer = func(tb *core.Testbed) {
		rec := obs.New(obs.Config{
			Clock:          tb.Eng.Now,
			SampleInterval: 10 * time.Millisecond,
		})
		tb.AttachObserver(rec)
		if captureOps {
			capRec := trace.NewRecorder(fmt.Sprintf("run%d", len(obsRuns)), 0)
			capRec.Attach(rec)
			opCaptures = append(opCaptures, capRec)
		}
		obsRuns = append(obsRuns, obs.Run{
			Label: fmt.Sprintf("run%d", len(obsRuns)),
			Rec:   rec,
		})
	}
}

func main() {
	exp := flag.String("exp", "", "experiment id (see -list) or 'all'")
	scaleName := flag.String("scale", "quick", "experiment scale: quick, default or paper")
	list := flag.Bool("list", false, "list experiments")
	tracePath := flag.String("trace", "", "write a Perfetto trace-event JSON of all runs to this file")
	metricsPath := flag.String("metrics", "", "write per-tenant metrics of all runs to this file (.json or .csv)")
	blamePath := flag.String("blame", "", "write the latency blame analysis of all runs to this file (.json or .csv)")
	whatIfSpec := flag.String("whatif", "", "blamesweep what-if spec, e.g. nic=2x,osd=2x,lockcs=0.5,flusher=pinned")
	fuzzN := flag.Int("fuzz", 0, "run a deterministic fuzz sweep of N scenarios and exit (see FUZZING in EXPERIMENTS.md)")
	fuzzSeed := flag.Int64("seed", 1, "scenario generator seed for -fuzz")
	fuzzDir := flag.String("fuzzdir", "fuzz-repros", "directory for shrunk reproducer specs of failing fuzz scenarios ('' disables)")
	fuzzSpec := flag.String("fuzzspec", "", "replay one fuzz reproducer spec file and check its invariants")
	overload := flag.Bool("overload", false, "shorthand for -exp overloadsweep")
	crash := flag.Bool("crash", false, "shorthand for -exp crashsweep")
	flag.StringVar(&crashCSVPath, "crashcsv", "", "write crashsweep rows (recovery time, blast radius) as CSV to this file")
	flag.StringVar(&monitorBasePath, "monitor", "", "write monitorsweep telemetry artifacts (windowed CSV + alert ledger per case) using this base path")
	flag.StringVar(&recordTracePath, "record", "", "write the recorded op trace to this file (see TRACES.md)")
	flag.StringVar(&diffCSVPath, "diffcsv", "", "write trace-diff rows as CSV (with -exp tracesweep, -replay or -tracediff)")
	replayPath := flag.String("replay", "", "replay a recorded op trace against -config and exit")
	configName := flag.String("config", "D", "client configuration for -replay: D, F or K")
	admission := flag.Bool("admission", false, "enable the overload-admission policy for -replay")
	traceDiff := flag.String("tracediff", "", "compare two recorded op traces given as a.trace,b.trace and exit")
	flag.Parse()

	if *overload {
		if *exp != "" && *exp != "overloadsweep" {
			fmt.Fprintln(os.Stderr, "-overload conflicts with -exp "+*exp)
			os.Exit(2)
		}
		*exp = "overloadsweep"
	}
	if *crash {
		if *exp != "" && *exp != "crashsweep" {
			fmt.Fprintln(os.Stderr, "-crash conflicts with -exp "+*exp)
			os.Exit(2)
		}
		*exp = "crashsweep"
	}

	if *traceDiff != "" {
		runTraceDiff(*traceDiff, diffCSVPath)
		return
	}

	if *fuzzSpec != "" {
		f, err := os.Open(*fuzzSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sc, err := fuzz.ParseSpec(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(fuzz.RunSpec(os.Stdout, sc)) > 0 {
			os.Exit(1)
		}
		return
	}
	if *fuzzN > 0 {
		sum, err := fuzz.Sweep(fuzz.Options{
			N: *fuzzN, Seed: *fuzzSeed, Out: os.Stdout, ReproDir: *fuzzDir,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if sum.Violations > 0 {
			os.Exit(1)
		}
		return
	}

	if *whatIfSpec != "" {
		w, err := blame.ParseWhatIf(*whatIfSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		whatIf = &w
		if *exp != "blamesweep" && *exp != "all" {
			fmt.Fprintln(os.Stderr, "-whatif requires -exp blamesweep (or all)")
			os.Exit(2)
		}
	}

	if *list || (*exp == "" && *replayPath == "") {
		fmt.Println("experiments:")
		names := make([]string, 0, len(experimentsByName))
		for name := range experimentsByName {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Println("  " + name)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale
	case "default":
		scale = experiments.DefaultScale
	case "paper":
		scale = experiments.PaperScale
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	if *replayPath != "" {
		if *exp != "" {
			fmt.Fprintln(os.Stderr, "-replay conflicts with -exp "+*exp)
			os.Exit(2)
		}
		runReplayFile(*replayPath, *configName, *admission, scale)
		exitOnViolations()
		return
	}

	// tracesweep writes its own -record/-diffcsv artifacts when selected
	// directly; any other experiment gets a generic per-run op capture.
	sweepArtifacts = *exp == "tracesweep"
	captureOps = recordTracePath != "" && !sweepArtifacts

	if *tracePath != "" || *metricsPath != "" || *blamePath != "" || captureOps {
		enableObservability()
	}

	if *exp == "all" {
		names := make([]string, 0, len(experimentsByName))
		for name := range experimentsByName {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			runOne(name, scale)
		}
		exportObs(*tracePath, *metricsPath)
		exportBlame(*blamePath)
		exportTraces(recordTracePath)
		exitOnViolations()
		return
	}
	if _, ok := experimentsByName[*exp]; !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	runOne(*exp, scale)
	exportObs(*tracePath, *metricsPath)
	exportBlame(*blamePath)
	exportTraces(recordTracePath)
	exitOnViolations()
}

// exportTraces writes the generic per-run op captures collected via
// the Observer hook: to the given path directly for a single run, or
// to <base>-runN<ext> each when several testbeds recorded.
func exportTraces(path string) {
	if path == "" || len(opCaptures) == 0 {
		return
	}
	ext := filepath.Ext(path)
	for i, capRec := range opCaptures {
		out := path
		if len(opCaptures) > 1 {
			out = strings.TrimSuffix(path, ext) + fmt.Sprintf("-run%d", i) + ext
		}
		tr := capRec.Snapshot()
		if err := tr.WriteFile(out); err != nil {
			fmt.Fprintf(os.Stderr, "trace record: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("record: %d op(s) -> %s\n", len(tr.Ops), out)
	}
}

// parseConfig maps a -config letter onto the client configuration.
func parseConfig(name string) (core.Configuration, error) {
	switch strings.ToUpper(name) {
	case "D":
		return core.ConfigD, nil
	case "F":
		return core.ConfigF, nil
	case "K":
		return core.ConfigK, nil
	}
	return core.ConfigD, fmt.Errorf("unknown configuration %q (want D, F or K)", name)
}

// runReplayFile replays a recorded trace file against one client
// configuration and diffs the result against the recording.
func runReplayFile(path, configName string, admission bool, scale experiments.Scale) {
	tr, err := trace.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg, err := parseConfig(configName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	c := experiments.TraceCase{Label: strings.ToUpper(configName), Config: cfg, Admission: admission}
	if admission {
		c.Label += "+adm"
	}
	fmt.Printf("Replay %s (label %q, %d ops) under %s\n", path, tr.Label, len(tr.Ops), c.Label)
	replayed, row := experiments.ReplayTraceUnder(tr, c, scale)
	fmt.Println("  " + row.String())
	noteViolations(experiments.TraceRowViolations(row))
	if recordTracePath != "" {
		if err := replayed.WriteFile(recordTracePath); err != nil {
			fmt.Fprintf(os.Stderr, "trace record: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("record: %d op(s) -> %s\n", len(replayed.Ops), recordTracePath)
	}
	if diffCSVPath != "" {
		writeDiffCSV(diffCSVPath, trace.Compare(tr, replayed))
	}
}

// runTraceDiff compares two trace files given as "a.trace,b.trace".
func runTraceDiff(spec, csvPath string) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "-tracediff wants two comma-separated trace files")
		os.Exit(2)
	}
	a, err := trace.ReadFile(parts[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	b, err := trace.ReadFile(parts[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d := trace.Compare(a, b)
	d.Render(os.Stdout)
	if csvPath != "" {
		writeDiffCSV(csvPath, d)
	}
}

// writeDiffCSV writes one diff's rows to a CSV file.
func writeDiffCSV(path string, d *trace.Diff) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diff csv: %v\n", err)
		os.Exit(1)
	}
	err = d.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "diff csv: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("diff: %d row(s) -> %s\n", len(d.Rows), path)
}

// exitOnViolations terminates with a nonzero status if any experiment
// reported an invariant violation.
func exitOnViolations() {
	if invariantFailures > 0 {
		fmt.Fprintf(os.Stderr, "%d invariant violation(s)\n", invariantFailures)
		os.Exit(1)
	}
}

// exportBlame writes the blame reports of all runs — the blamesweep's
// own plus an analysis of every recorder the -trace/-metrics hook
// collected — to the requested file, and any what-if comparisons next
// to it as <base>-whatif.json.
func exportBlame(path string) {
	if path == "" {
		return
	}
	reports := append([]blame.Report{}, blameReports...)
	for _, run := range obsRuns {
		reports = append(reports, blame.Analyze(run.Label, run.Rec))
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blame export: %v\n", err)
		os.Exit(1)
	}
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		err = blame.WriteCSV(f, reports)
	} else {
		err = blame.WriteJSON(f, reports)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "blame export: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("blame: %d run(s) -> %s\n", len(reports), path)

	if len(whatIfReports) > 0 {
		wiPath := strings.TrimSuffix(path, filepath.Ext(path)) + "-whatif.json"
		wf, err := os.Create(wiPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "what-if export: %v\n", err)
			os.Exit(1)
		}
		for _, rep := range whatIfReports {
			if err == nil {
				err = blame.WriteWhatIfJSON(wf, rep)
			}
		}
		if cerr := wf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "what-if export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("what-if: %d comparison(s) -> %s\n", len(whatIfReports), wiPath)
	}
}

// exportObs writes the collected recorders to the requested artifact
// files and reports where they landed.
func exportObs(tracePath, metricsPath string) {
	if tracePath != "" {
		if err := obs.WriteTraceFile(tracePath, obsRuns); err != nil {
			fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d run(s) -> %s\n", len(obsRuns), tracePath)
	}
	if metricsPath != "" {
		if err := obs.WriteMetricsFile(metricsPath, obsRuns); err != nil {
			fmt.Fprintf(os.Stderr, "metrics export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: %d run(s) -> %s\n", len(obsRuns), metricsPath)
	}
}

func runOne(name string, scale experiments.Scale) {
	fmt.Printf("=== %s (factor %.2f, window %v) ===\n", name, scale.Factor, scale.Duration)
	start := time.Now()
	experimentsByName[name](scale)
	fmt.Printf("--- %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
}

func runFig1(scale experiments.Scale) {
	fmt.Println("Fig 1: Fileserver under kernel I/O contention (kernel client only)")
	for _, c := range experiments.Fig1Cases() {
		row := experiments.RunInterference(c, scale)
		printInterference(row)
	}
}

func runFig6a(scale experiments.Scale) {
	fmt.Println("Fig 6a: Fileserver vs RandomIO interference (K vs D)")
	for _, c := range experiments.Fig6aCases() {
		printInterference(experiments.RunInterference(c, scale))
	}
}

func runFig6b(scale experiments.Scale) {
	fmt.Println("Fig 6b: Fileserver vs Webserver interference (K vs D)")
	for _, c := range experiments.Fig6bCases() {
		printInterference(experiments.RunInterference(c, scale))
	}
}

func printInterference(row experiments.InterferenceRow) {
	fmt.Printf("  %-14s %9.1f MB/s   neighbor-cores %6.1f%%   lock wait/req %-12v hold/req %v\n",
		row.Label, row.FLSThroughputMBps, row.NeighborCoreUtilPct, row.LockWaitPerReq, row.LockHoldPerReq)
}

func runFig6c(scale experiments.Scale) {
	fmt.Println("Fig 6c: Sysbench and Fileserver latency under colocation")
	for _, c := range experiments.Fig6cCases() {
		row := experiments.RunSysbench(c, scale)
		fmt.Printf("  %-14s ssb-p99 %-12v fls-avg %-12v ssb-cores %6.1f%%\n",
			row.Label, row.SSBLatencyP99, row.FLSLatencyAvg, row.SSBCoreUtilPct)
	}
}

func runKVScaleout(phase experiments.KVPhase, scale experiments.Scale) {
	label := map[experiments.KVPhase]string{experiments.PhasePut: "put", experiments.PhaseGet: "get (out-of-core)"}
	fmt.Printf("Fig 7 scaleout: KV %s latency, private client per pool\n", label[phase])
	for _, cfg := range experiments.Fig7aConfigs() {
		for _, n := range experiments.Fig7ScaleoutCounts() {
			fmt.Println("  " + experiments.RunKVScaleout(cfg, n, phase, scale).String())
		}
	}
}

func runKVScaleup(phase experiments.KVPhase, scale experiments.Scale) {
	label := map[experiments.KVPhase]string{experiments.PhasePut: "put", experiments.PhaseGet: "get"}
	fmt.Printf("Fig 7 scaleup: KV %s latency, cloned containers over shared client\n", label[phase])
	for _, cfg := range experiments.Fig7cConfigs() {
		for _, n := range experiments.Fig7ScaleupCounts() {
			fmt.Println("  " + experiments.RunKVScaleup(cfg, n, phase, scale).String())
		}
	}
}

func runFig8(scale experiments.Scale) {
	fmt.Println("Fig 8: webserver container startup scaleup (real time, context switches)")
	for _, cfg := range experiments.Fig8Configs() {
		for _, n := range experiments.Fig8Counts() {
			fmt.Println("  " + experiments.RunStartupScaleup(cfg, n, scale).String())
		}
	}
}

func runSeqIO(write bool, scale experiments.Scale) {
	kind := "Seqread"
	if write {
		kind = "Seqwrite"
	}
	fmt.Printf("Fig 9: %s scaleout\n", kind)
	for _, cfg := range []core.Configuration{core.ConfigD, core.ConfigF, core.ConfigK} {
		for _, n := range experiments.Fig9PoolCounts() {
			fmt.Println("  " + experiments.RunSeqIOScaleout(cfg, n, write, scale).String())
		}
	}
}

func runFig10(scale experiments.Scale) {
	fmt.Println("Fig 10: Fileserver scaleout")
	for _, cfg := range []core.Configuration{core.ConfigD, core.ConfigF, core.ConfigK} {
		for _, n := range experiments.Fig10PoolCounts() {
			fmt.Println("  " + experiments.RunFileserverScaleout(cfg, n, scale).String())
		}
	}
}

func runFileIO(append bool, scale experiments.Scale) {
	kind := "Fileread"
	if append {
		kind = "Fileappend"
	}
	fmt.Printf("Fig 11: %s scaleup (timespan, max memory)\n", kind)
	for _, cfg := range experiments.Fig11Configs() {
		for _, n := range experiments.Fig11Counts() {
			fmt.Println("  " + experiments.RunFileIOScaleup(cfg, n, append, scale).String())
		}
	}
}

func runAblations(scale experiments.Scale) {
	fmt.Println("Design-choice ablations (DESIGN.md / paper §3, §6.3.2)")
	for _, row := range experiments.AllAblations(scale) {
		fmt.Println("  " + row.String())
	}
}

func runBlameSweep(scale experiments.Scale) {
	fmt.Println("Blame sweep: critical-path decomposition and per-tenant interference")
	for _, c := range experiments.BlameSweepCases() {
		rep, _ := experiments.RunBlameSweep(c, scale, nil)
		blameReports = append(blameReports, rep)
		blame.Render(os.Stdout, rep)
		if whatIf != nil {
			measured, _ := experiments.RunBlameSweep(c, scale, whatIf)
			cmp := blame.CompareWhatIf(*whatIf, rep, measured)
			whatIfReports = append(whatIfReports, cmp)
			fmt.Println()
			blame.RenderWhatIf(os.Stdout, cmp)
		}
		fmt.Println()
	}
}

func runFuzzSweep(scale experiments.Scale) {
	// The experiment-family entry point runs a fixed-seed sweep sized
	// by scale; heavier audits use `danausbench -fuzz N -seed S`.
	n := 10
	switch {
	case scale.Factor >= 1:
		n = 200
	case scale.Factor >= 0.1:
		n = 50
	}
	fmt.Printf("Fuzz sweep: %d seeded scenarios through the invariant registry\n", n)
	sum, err := fuzz.Sweep(fuzz.Options{N: n, Seed: 1, Out: os.Stdout})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if sum.Violations > 0 {
		os.Exit(1)
	}
}

func runFaultSweep(scale experiments.Scale) {
	fmt.Println("Fault sweep: recovery and isolation under deterministic fault schedules")
	for _, c := range experiments.FaultSweepCases(scale) {
		row := experiments.RunFaultSweep(c, scale)
		fmt.Println("  " + row.String())
		noteViolations(experiments.FaultRowViolations(row))
	}
}

// crashCSVPath, when set via -crashcsv, receives the crashsweep rows
// as CSV (one line per case) for CI artifact collection.
var crashCSVPath string

func runCrashSweep(scale experiments.Scale) {
	fmt.Println("Crash sweep: recovery time and blast radius of client-side crashes (D vs F vs K)")
	var rows []experiments.CrashSweepRow
	for _, c := range experiments.CrashSweepCases() {
		row := experiments.RunCrashSweep(c, scale)
		fmt.Println("  " + row.String())
		noteViolations(experiments.CrashRowViolations(row))
		rows = append(rows, row)
	}
	if crashCSVPath == "" {
		return
	}
	f, err := os.Create(crashCSVPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashsweep csv: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(f, "label,config,replication,victim_mbps,victim_errors,bystander_mbps,bystander_errors,affected_tenants,queue_shed,recovery_ns,victim_repair_ns,durability_loss_bytes")
	for _, r := range rows {
		fmt.Fprintf(f, "%s,%s,%d,%.2f,%d,%.2f,%d,%d,%d,%d,%d,%d\n",
			r.Label, r.Config, r.Replication,
			r.VictimWriteMBps, r.VictimErrors,
			r.BystanderMBps, r.BystanderErrors,
			r.AffectedTenants, r.QueueShed,
			r.RecoveryTime.Nanoseconds(), r.VictimRepair.Nanoseconds(),
			r.DurabilityViolation)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "crashsweep csv: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("crashsweep: %d row(s) -> %s\n", len(rows), crashCSVPath)
}

// monitorBasePath, when set via -monitor, receives the live-telemetry
// artifacts of each monitorsweep case: <base>-<case>-windows.csv (the
// windowed per-tenant aggregates) and <base>-<case>-alerts.csv (the SLO
// burn-rate alert ledger). Both are deterministic: repeated runs of the
// same scale produce byte-identical files.
var monitorBasePath string

func runMonitorSweep(scale experiments.Scale) {
	fmt.Println("Monitor sweep: live SLO burn-rate alert timelines under overload and crash (D+adm vs K)")
	for _, c := range experiments.MonitorCases() {
		row := experiments.RunMonitorCase(c, scale)
		fmt.Println("  " + row.String())
		for _, e := range row.Alerts {
			mark := "  "
			if e.T > row.MeasureEnd {
				mark = " *" // post-measurement drain event
			}
			fmt.Println("   " + mark + " " + e.String())
		}
		noteViolations(experiments.MonitorRowViolations(row))
		exportMonitorCase(row)
	}
}

// exportMonitorCase writes one monitorsweep case's windows CSV and
// alert ledger under monitorBasePath.
func exportMonitorCase(row experiments.MonitorRow) {
	if monitorBasePath == "" {
		return
	}
	slug := strings.ToLower(row.Label + "-" + row.Fault)
	slug = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		}
		return '_'
	}, slug)
	ext := filepath.Ext(monitorBasePath)
	base := strings.TrimSuffix(monitorBasePath, ext)
	write := func(kind string, emit func(w *os.File) error) {
		path := fmt.Sprintf("%s-%s-%s.csv", base, slug, kind)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "monitorsweep %s: %v\n", kind, err)
			os.Exit(1)
		}
		err = emit(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "monitorsweep %s: %v\n", kind, err)
			os.Exit(1)
		}
		fmt.Printf("monitorsweep: %s\n", path)
	}
	write("windows", func(f *os.File) error { return row.Monitor.WriteWindowsCSV(f) })
	write("alerts", func(f *os.File) error { return row.Monitor.WriteAlertsCSV(f) })
}

func runTraceSweep(scale experiments.Scale) {
	fmt.Println("Trace sweep: record a production-shaped run under D, replay it byte-identically under other configs")
	res := experiments.RunTraceSweep(scale)
	for _, row := range res.Rows {
		fmt.Println("  " + row.String())
		noteViolations(experiments.TraceRowViolations(row))
	}
	if !sweepArtifacts {
		return
	}
	if recordTracePath != "" {
		if err := res.Baseline.WriteFile(recordTracePath); err != nil {
			fmt.Fprintf(os.Stderr, "trace record: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("record: %d op(s) -> %s\n", len(res.Baseline.Ops), recordTracePath)
	}
	if diffCSVPath != "" {
		writeSweepDiffCSV(diffCSVPath, res)
	}
}

// writeSweepDiffCSV folds every replay's diff against the baseline
// into one CSV, with a leading column naming the replay case.
func writeSweepDiffCSV(path string, res *experiments.TraceSweepResult) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diff csv: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(f, "replay,tenant,op,count_a,count_b,p50_a_us,p99_a_us,p999_a_us,p50_b_us,p99_b_us,p999_b_us,ratio_p99,ratio_p999")
	us := func(v time.Duration) float64 { return float64(v) / float64(time.Microsecond) }
	rows := 0
	for _, rt := range res.Replays {
		d := trace.Compare(res.Baseline, rt)
		for _, r := range d.Rows {
			kind := r.Kind
			if kind == "" {
				kind = "*"
			}
			fmt.Fprintf(f, "%s,%s,%s,%d,%d,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f,%.3f,%.3f\n",
				rt.Label, r.Tenant, kind, r.A.Count, r.B.Count,
				us(r.A.P50), us(r.A.P99), us(r.A.P999),
				us(r.B.P50), us(r.B.P99), us(r.B.P999),
				r.RatioP99(), r.RatioP999())
			rows++
		}
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "diff csv: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("diff: %d row(s) -> %s\n", rows, path)
}

func runOverloadSweep(scale experiments.Scale) {
	fmt.Println("Overload sweep: victim tail latency and load shedding under open-loop overload")
	for _, row := range experiments.RunOverloadSweep(scale) {
		fmt.Println("  " + row.String())
		noteViolations(experiments.OverloadRowViolations(row))
	}
}

func runTable2(experiments.Scale) {
	fmt.Println("Table 2: contention workload symbols")
	for _, row := range workloads.Table2() {
		fmt.Printf("  %-8s %s\n", row[0], row[1])
	}
}

func runTable1(experiments.Scale) {
	fmt.Println("Table 1: client system components")
	fmt.Println("  Symbol  Union           UnionCache  Backend     ClientCache")
	rows := [][5]string{
		{"D", "Danaus (opt.)", "-", "Danaus", "UlcC"},
		{"K", "-", "-", "CephFS", "PagC"},
		{"F", "-", "-", "ceph-fuse", "UlcC"},
		{"FP", "-", "-", "ceph-fuse", "UlcC+PagC"},
		{"K/K", "AUFS", "PagC", "CephFS", "PagC"},
		{"F/K", "unionfs-fuse", "-", "CephFS", "PagC"},
		{"F/F", "unionfs-fuse", "-", "ceph-fuse", "UlcC"},
		{"FP/FP", "unionfs-fuse", "PagC", "ceph-fuse", "UlcC+PagC"},
	}
	for _, r := range rows {
		fmt.Printf("  %-7s %-15s %-11s %-11s %s\n", r[0], r[1], r[2], r[3], r[4])
	}
}

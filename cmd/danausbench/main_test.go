package main

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/vfsapi"
)

// TestNoteViolationsAccumulates checks the satellite invariant plumbing:
// violations reported by experiment rows land in the accumulator that
// turns the exit status nonzero.
func TestNoteViolationsAccumulates(t *testing.T) {
	invariantFailures = 0
	defer func() { invariantFailures = 0 }()

	noteViolations(nil)
	if invariantFailures != 0 {
		t.Fatalf("clean rows counted as failures: %d", invariantFailures)
	}

	// A row whose admission queue overran its cap and whose accounting
	// does not balance must produce two violations.
	bad := experiments.OverloadRow{
		Label: "D+adm", Multiplier: 4, QueueCap: 8,
		Admission: vfsapi.AdmissionStats{
			Offered: 10, Admitted: 5, Shed: 3, // 2 ops unaccounted
			MaxQueued: 9,
		},
	}
	vs := experiments.OverloadRowViolations(bad)
	if len(vs) != 2 {
		t.Fatalf("want 2 violations, got %d: %v", len(vs), vs)
	}
	noteViolations(vs)
	if invariantFailures != 2 {
		t.Fatalf("accumulator = %d, want 2", invariantFailures)
	}

	// A faultsweep row that lost acknowledged bytes despite a surviving
	// replica is a violation; one with replication 1 is not.
	loss := experiments.FaultSweepRow{Replication: 2, DataLossBytes: 4096}
	if vs := experiments.FaultRowViolations(loss); len(vs) != 1 {
		t.Fatalf("want 1 data-loss violation, got %v", vs)
	}
	loss.Replication = 1
	if vs := experiments.FaultRowViolations(loss); len(vs) != 0 {
		t.Fatalf("replication-1 loss is not a violation, got %v", vs)
	}
}

// TestCleanOverloadRowPasses confirms a consistent row yields no
// violations (so healthy sweeps keep exit status zero).
func TestCleanOverloadRowPasses(t *testing.T) {
	ok := experiments.OverloadRow{
		Label: "D+adm", Multiplier: 2, QueueCap: 32,
		Admission: vfsapi.AdmissionStats{
			Offered: 100, Admitted: 90, Shed: 10, MaxQueued: 32,
		},
	}
	if vs := experiments.OverloadRowViolations(ok); len(vs) != 0 {
		t.Fatalf("clean row flagged: %v", vs)
	}
}

package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// runMonitorCmd pretty-prints the live-telemetry artifacts written by
// `danausbench -exp monitorsweep -monitor <base>`: the per-tenant
// windowed aggregates as a latency timeline with inline p99 bars, and
// the SLO burn-rate alert ledger as a fire/clear timeline.
func runMonitorCmd(args []string) {
	fs := flag.NewFlagSet("monitor", flag.ExitOnError)
	windowsPath := fs.String("windows", "", "windows CSV (…-windows.csv) to render")
	alertsPath := fs.String("alerts", "", "alert ledger CSV (…-alerts.csv) to render")
	tenant := fs.String("tenant", "", "restrict the window timeline to one tenant")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: danausctl monitor -windows FILE [-alerts FILE] [-tenant NAME]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *windowsPath == "" && *alertsPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	if *windowsPath != "" {
		if err := renderWindows(*windowsPath, *tenant); err != nil {
			fmt.Fprintf(os.Stderr, "monitor: %v\n", err)
			os.Exit(1)
		}
	}
	if *alertsPath != "" {
		if err := renderAlerts(*alertsPath); err != nil {
			fmt.Fprintf(os.Stderr, "monitor: %v\n", err)
			os.Exit(1)
		}
	}
}

// monWindow is one parsed windows-CSV row.
type monWindow struct {
	start, end       time.Duration
	tenant           string
	ops, errors      uint64
	p50, p99, mean   time.Duration
	queued           int
	shed             uint64
	topAggressor     string
	topAggressorWait time.Duration
}

func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	recs, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, io.ErrUnexpectedEOF
	}
	return recs[1:], nil // drop header
}

func usDur(field string) time.Duration {
	n, _ := strconv.ParseInt(field, 10, 64)
	return time.Duration(n) * time.Microsecond
}

func uintField(field string) uint64 {
	n, _ := strconv.ParseUint(field, 10, 64)
	return n
}

func renderWindows(path, only string) error {
	recs, err := readCSV(path)
	if err != nil {
		return err
	}
	var rows []monWindow
	var maxP99 time.Duration
	for _, f := range recs {
		if len(f) < 15 {
			continue
		}
		w := monWindow{
			start: usDur(f[1]), end: usDur(f[2]), tenant: f[3],
			ops: uintField(f[4]), errors: uintField(f[5]),
			p50: usDur(f[7]), p99: usDur(f[8]), mean: usDur(f[10]),
			queued: int(uintField(f[11])), shed: uintField(f[12]),
			topAggressor: f[13], topAggressorWait: usDur(f[14]),
		}
		if only != "" && w.tenant != only {
			continue
		}
		rows = append(rows, w)
		if w.p99 > maxP99 {
			maxP99 = w.p99
		}
	}
	fmt.Printf("windows: %s (%d row(s))\n", path, len(rows))
	if len(rows) == 0 {
		return nil
	}
	fmt.Printf("  %-16s %-8s %6s %5s %9s %9s %6s %5s  %-22s %s\n",
		"window", "tenant", "ops", "err", "p50", "p99", "shed", "queue", "p99 bar", "interference")
	const barWidth = 20
	for _, w := range rows {
		bar := 0
		if maxP99 > 0 {
			bar = int(int64(barWidth) * int64(w.p99) / int64(maxP99))
		}
		interference := ""
		if w.topAggressor != "" {
			interference = fmt.Sprintf("%s waits on %s %v", w.tenant, w.topAggressor, w.topAggressorWait.Round(time.Microsecond))
		}
		fmt.Printf("  [%5.1fs-%5.1fs] %-8s %6d %5d %9v %9v %6d %5d  %-22s %s\n",
			w.start.Seconds(), w.end.Seconds(), w.tenant, w.ops, w.errors,
			w.p50.Round(time.Microsecond), w.p99.Round(time.Microsecond),
			w.shed, w.queued,
			"["+strings.Repeat("#", bar)+strings.Repeat(".", barWidth-bar)+"]",
			interference)
	}
	return nil
}

func renderAlerts(path string) error {
	recs, err := readCSV(path)
	if err != nil {
		return err
	}
	fmt.Printf("alerts: %s (%d transition(s))\n", path, len(recs))
	for _, f := range recs {
		if len(f) < 6 {
			continue
		}
		mark := "CLEAR "
		if f[3] == "firing" {
			mark = "FIRING"
		}
		fmt.Printf("  %10v %s %s/%s fast=%s slow=%s\n",
			usDur(f[0]).Round(time.Millisecond), mark, f[1], f[2], f[4], f[5])
	}
	return nil
}

// Command danausctl runs a custom multitenant scenario on the simulated
// testbed: a number of container pools of a chosen Table 1
// configuration, a chosen workload per pool, and an optional noisy
// neighbour — then prints per-pool and host-level statistics.
//
// Examples:
//
//	danausctl -config D -pools 4 -workload fileserver -duration 5s
//	danausctl -config K -pools 2 -workload seqwrite -neighbor rnd
//	danausctl -config F/F -pools 1 -workload kvput -clones 8
//
// The monitor subcommand pretty-prints the live-telemetry artifacts
// written by `danausbench -exp monitorsweep -monitor <base>`:
//
//	danausctl monitor -windows m-k-overload-windows.csv -alerts m-k-overload-alerts.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/kvstore"
	"repro/internal/sim"
	"repro/internal/vfsapi"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "monitor" {
		runMonitorCmd(os.Args[2:])
		return
	}
	configName := flag.String("config", "D", "client configuration: D K F FP K/K F/K F/F FP/FP")
	pools := flag.Int("pools", 1, "container pools (2 cores each)")
	workload := flag.String("workload", "fileserver", "fileserver | seqwrite | seqread | kvput")
	duration := flag.Duration("duration", 2*time.Second, "measured window for timed workloads")
	neighbor := flag.Bool("neighbor", false, "run a RandomIO noisy neighbour pool")
	factor := flag.Float64("factor", 0.02, "dataset scale factor (1.0 = paper)")
	flag.Parse()

	config, ok := parseConfig(*configName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown configuration %q\n", *configName)
		os.Exit(2)
	}
	scale := experiments.Scale{Factor: *factor, Duration: *duration, Warmup: *duration / 4}

	switch *workload {
	case "fileserver":
		runInterferenceScenario(config, *pools, *neighbor, scale)
	case "seqwrite":
		row := experiments.RunSeqIOScaleout(config, *pools, true, scale)
		fmt.Println(row)
	case "seqread":
		row := experiments.RunSeqIOScaleout(config, *pools, false, scale)
		fmt.Println(row)
	case "kvput":
		runKVScenario(config, *pools, scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
}

func parseConfig(name string) (core.Configuration, bool) {
	for _, c := range core.AllConfigurations() {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

func runInterferenceScenario(config core.Configuration, pools int, neighbor bool, scale experiments.Scale) {
	c := experiments.InterferenceCase{Config: config, FLSCount: pools}
	if neighbor {
		c.Neighbor = "RND"
	}
	row := experiments.RunInterference(c, scale)
	fmt.Printf("%s\n", row.Label)
	fmt.Printf("  fileserver throughput : %.1f MB/s\n", row.FLSThroughputMBps)
	fmt.Printf("  fileserver pool cores : %.1f%%\n", row.FLSCoreUtilPct)
	fmt.Printf("  neighbour pool cores  : %.1f%%\n", row.NeighborCoreUtilPct)
	fmt.Printf("  fileserver iowait     : %v\n", row.FLSIOWait)
	fmt.Printf("  kernel lock wait/req  : %v (hold %v)\n", row.LockWaitPerReq, row.LockHoldPerReq)
}

// runKVScenario builds its own testbed so it can print store internals.
func runKVScenario(config core.Configuration, pools int, scale experiments.Scale) {
	tb := core.NewTestbed(core.TestbedConfig{Cores: 2 * pools, Params: scale.Params()})
	type inst struct {
		cont *core.Container
		db   *kvstore.DB
		put  *workloads.KVPut
	}
	insts := make([]*inst, pools)
	for i := range insts {
		name := fmt.Sprintf("kv%d", i)
		if err := tb.Cluster.ProvisionDir("/containers/" + name); err != nil {
			panic(err)
		}
		pool := tb.NewPool(name, cpu.MaskRange(2*i, 2*i+2), scale.PoolMem())
		cont, err := pool.NewContainer(name, core.MountSpec{Config: config, UpperDir: "/containers/" + name})
		if err != nil {
			panic(err)
		}
		insts[i] = &inst{cont: cont}
	}
	tb.Eng.Go("master", func(p *sim.Proc) {
		defer tb.Stop()
		g := workloads.NewGroup(tb.Eng)
		for i, in := range insts {
			in := in
			i := i
			g.Go("kv", func(pp *sim.Proc) {
				ctx := vfsapi.Ctx{P: pp, T: in.cont.NewThread()}
				db, err := kvstore.Open(ctx, kvstore.Config{
					FS: in.cont.Mount.Default, Dir: "/rocksdb",
					MemtableBytes: 8 << 20, Eng: tb.Eng, NewThread: in.cont.NewThread,
				})
				if err != nil {
					panic(err)
				}
				in.db = db
				in.put = &workloads.KVPut{DB: db, Seed: int64(i) + 1, NewThread: in.cont.NewThread}
				in.put.Defaults(scale.Factor)
				g2 := workloads.NewGroup(tb.Eng)
				in.put.Run(g2, workloads.Clock{Eng: tb.Eng})
				g2.Wait(pp)
				db.Close(ctx)
			})
		}
		g.Wait(p)
	})
	tb.Eng.Run()

	fmt.Printf("%s kvput across %d pools (virtual time %v)\n", config, pools, tb.Eng.Now())
	for i, in := range insts {
		l0, l1 := in.db.Levels()
		fmt.Printf("  pool %d: %d puts, avg %v, %d flushes, %d compactions, L0=%d L1=%d, stall %v\n",
			i, in.put.Stats.Ops.Ops, in.put.Stats.Latency.Mean(), in.db.Flushes, in.db.Compactions, l0, l1, in.db.StallTime)
	}
}

package danaus

import (
	"repro/internal/experiments"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// Experiment result rows (one type per figure of the paper).
type (
	// InterferenceRow is one bar of Fig 1/6a/6b.
	InterferenceRow = experiments.InterferenceRow
	// InterferenceCase selects a Fig 1/6a/6b bar.
	InterferenceCase = experiments.InterferenceCase
	// SysbenchRow is one group of Fig 6c.
	SysbenchRow = experiments.SysbenchRow
	// SysbenchCase selects a Fig 6c group.
	SysbenchCase = experiments.SysbenchCase
	// KVRow is one point of the Fig 7 curves.
	KVRow = experiments.KVRow
	// KVPhase selects put or get measurement.
	KVPhase = experiments.KVPhase
	// StartupRow is one point of Fig 8.
	StartupRow = experiments.StartupRow
	// ScaleoutRow is one point of Fig 9/10.
	ScaleoutRow = experiments.ScaleoutRow
	// FileIORow is one point of Fig 11.
	FileIORow = experiments.FileIORow
	// AblationRow compares a design choice against its removal.
	AblationRow = experiments.AblationRow
)

// KV measurement phases.
const (
	// PhasePut measures random inserts (Fig 7a/7c).
	PhasePut = experiments.PhasePut
	// PhaseGet measures random out-of-core lookups (Fig 7b/7d).
	PhaseGet = experiments.PhaseGet
)

// Op-trace record/replay (see TRACES.md).
type (
	// TraceCase selects one replay target of the trace sweep.
	TraceCase = experiments.TraceCase
	// TraceRow is the outcome of a recording or replay run.
	TraceRow = experiments.TraceRow
	// TraceSweepResult bundles the sweep rows with the traces behind them.
	TraceSweepResult = experiments.TraceSweepResult
)

var (
	// RecordTraceBaseline records the production-shaped op stream under D.
	RecordTraceBaseline = experiments.RecordTraceBaseline
	// ReplayTraceUnder replays a recorded trace against one configuration.
	ReplayTraceUnder = experiments.ReplayTraceUnder
	// RunTraceSweep records a baseline and replays it under every TraceCase.
	RunTraceSweep = experiments.RunTraceSweep
	// TraceCases returns the default replay targets (D identity, K, D+adm).
	TraceCases = experiments.TraceCases
)

// Experiment runners: each regenerates one figure of the paper's
// evaluation on a fresh deterministic testbed.
var (
	// RunInterference executes a Fig 1/6a/6b case.
	RunInterference = experiments.RunInterference
	// RunSysbench executes a Fig 6c case.
	RunSysbench = experiments.RunSysbench
	// RunKVScaleout executes a Fig 7a/7b point.
	RunKVScaleout = experiments.RunKVScaleout
	// RunKVScaleup executes a Fig 7c/7d point.
	RunKVScaleup = experiments.RunKVScaleup
	// RunStartupScaleup executes a Fig 8 point.
	RunStartupScaleup = experiments.RunStartupScaleup
	// RunSeqIOScaleout executes a Fig 9 point.
	RunSeqIOScaleout = experiments.RunSeqIOScaleout
	// RunFileserverScaleout executes a Fig 10 point.
	RunFileserverScaleout = experiments.RunFileserverScaleout
	// RunFileIOScaleup executes a Fig 11 point.
	RunFileIOScaleup = experiments.RunFileIOScaleup
	// AllAblations runs every design-choice ablation.
	AllAblations = experiments.AllAblations
)

// Workload generators of Table 2, usable against any mounted
// configuration.
type (
	// Fileserver is the Filebench fileserver personality.
	Fileserver = workloads.Fileserver
	// Webserver is the Filebench webserver personality.
	Webserver = workloads.Webserver
	// SeqIO is Singlestreamwrite/Singlestreamread.
	SeqIO = workloads.SeqIO
	// RandomIO is the Stress-ng noisy neighbour.
	RandomIO = workloads.RandomIO
	// Sysbench is the CPU benchmark.
	Sysbench = workloads.Sysbench
	// Startup is the Lighttpd-style container start sequence.
	Startup = workloads.Startup
	// FileAppend is the custom Fileappend benchmark.
	FileAppend = workloads.FileAppend
	// FileRead is the custom Fileread benchmark.
	FileRead = workloads.FileRead
	// WorkloadGroup tracks completion of spawned workload threads.
	WorkloadGroup = workloads.Group
	// WorkloadClock bounds a measurement window.
	WorkloadClock = workloads.Clock
	// WorkloadStats collects a workload's measurements.
	WorkloadStats = workloads.Stats
)

// NewWorkloadGroup creates a completion group on an engine.
var NewWorkloadGroup = workloads.NewGroup

// NewWorkloadStats creates an empty stats collector (required before
// running a workload that records measurements).
var NewWorkloadStats = workloads.NewStats

// The LSM key-value store (the RocksDB stand-in of §6.3.1).
type (
	// KVStore is an open store.
	KVStore = kvstore.DB
	// KVStoreConfig configures a store.
	KVStoreConfig = kvstore.Config
)

// OpenKVStore opens a store on any mounted filesystem.
var OpenKVStore = kvstore.Open

// ErrKVNotFound reports a missing key.
var ErrKVNotFound = kvstore.ErrNotFound

// Histogram records latency samples with percentile queries.
type Histogram = metrics.Histogram

// NewHistogram returns an empty latency histogram.
var NewHistogram = metrics.NewHistogram
